// Package scenario synthesizes MiniC concurrency workloads from compact,
// seeded specifications — and turns every generated program into a
// soundness obligation for the whole Chimera pipeline.
//
// A Spec maps to exactly one program: generation draws every choice from
// a splitmix64 PRNG seeded by Spec.Seed, iterates only over slices and
// integer ranges (never Go maps), and never consults the clock, so the
// same Spec produces byte-identical source on every run, on every
// GOMAXPROCS, on every platform. That is the same determinism contract
// the analysis pipeline itself is held to (PR 2), extended to the test
// workload supply.
//
// Five families cover the synchronization shapes the embedded benchmarks
// only sample:
//
//	prodcons   producer–consumer meshes: P producers feed Q mutex+condvar
//	           queues drained by C consumers, sentinel-terminated
//	workpool   a work-stealing pool: workers drain private chunks of a
//	           task array, then steal from a shared tail index
//	pipeline   a chain of stages connected by bounded handoff queues,
//	           each stage transforming and forwarding sentinel-terminated
//	           streams
//	cache      a reader-heavy shared cache: tagged slots, demand fill,
//	           hit counters, keys drawn from the recorded rnd() stream
//	counters   striped counters: threads scatter increments over locked
//	           stripes plus an unstriped racy total
//
// LockDensity controls, per generated access site, the probability that
// the site is lock-guarded — 100 yields a data-race-free program, 0 a
// maximally racy one, anything between a mix of protected and racy
// sites. Racy sites are exactly what the weak-lock instrumentation is
// for, so generated programs exercise RELAY, MHP, instrumentation,
// certification, record/replay and both dynamic checkers at sizes and
// shapes the nine fixed benchmarks cannot.
//
// RunPipeline (pipeline.go) is the soundness harness: every generated
// program must analyze (fresh and incremental, byte-identically),
// instrument, certify clean, record, replay bit-identically, and produce
// identical epoch-vs-vector race verdicts. Any divergence is reported as
// a minimized, reproducible Spec.
package scenario

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Families lists the generator families in canonical order.
var Families = []string{"cache", "counters", "pipeline", "prodcons", "workpool"}

// Spec limits. Validation fails closed outside them.
const (
	MaxThreads = 8
	MaxShared  = 64
	MaxOps     = 4096
)

// Spec is a complete, deterministic description of one generated
// program. Same Spec → byte-identical source.
type Spec struct {
	Family string // one of Families
	Seed   uint64 // drives every generation-time choice

	Threads     int // worker threads (prodcons/pipeline need ≥ 2)
	Shared      int // shared slots / stripes / queues, family-interpreted
	Ops         int // operations per worker thread
	LockDensity int // 0..100: % chance each generated access site is lock-guarded
}

// sizes maps the shorthand size classes of the spec grammar to
// parameter presets.
var sizes = map[string]Spec{
	"small":  {Threads: 2, Shared: 4, Ops: 16, LockDensity: 60},
	"medium": {Threads: 4, Shared: 8, Ops: 96, LockDensity: 60},
	"large":  {Threads: 8, Shared: 16, Ops: 512, LockDensity: 60},
}

// Validate reports the first violated constraint, with a deterministic
// message suitable for golden-testing the fail-closed paths.
func (s Spec) Validate() error {
	okFamily := false
	for _, f := range Families {
		if s.Family == f {
			okFamily = true
			break
		}
	}
	if !okFamily {
		return fmt.Errorf("scenario: unknown family %q (want one of %s)", s.Family, strings.Join(Families, ", "))
	}
	minThreads := 1
	if s.Family == "prodcons" || s.Family == "pipeline" {
		minThreads = 2
	}
	if s.Threads < minThreads || s.Threads > MaxThreads {
		return fmt.Errorf("scenario: %s: threads must be in [%d,%d], got %d", s.Family, minThreads, MaxThreads, s.Threads)
	}
	if s.Shared < 1 || s.Shared > MaxShared {
		return fmt.Errorf("scenario: %s: shared must be in [1,%d], got %d", s.Family, MaxShared, s.Shared)
	}
	if s.Ops < 1 || s.Ops > MaxOps {
		return fmt.Errorf("scenario: %s: ops must be in [1,%d], got %d", s.Family, MaxOps, s.Ops)
	}
	if s.LockDensity < 0 || s.LockDensity > 100 {
		return fmt.Errorf("scenario: %s: lock density must be in [0,100], got %d", s.Family, s.LockDensity)
	}
	return nil
}

// String renders the canonical spec form: family:seed:tT,sS,oO,lL.
// Parse(s.String()) == s for every valid spec.
func (s Spec) String() string {
	return fmt.Sprintf("%s:%d:t%d,s%d,o%d,l%d", s.Family, s.Seed, s.Threads, s.Shared, s.Ops, s.LockDensity)
}

// Name is the file- and benchmark-safe identifier of the spec.
func (s Spec) Name() string {
	return fmt.Sprintf("%s_%d_t%ds%do%dl%d", s.Family, s.Seed, s.Threads, s.Shared, s.Ops, s.LockDensity)
}

// Parse decodes the spec grammar:
//
//	SPEC   := family ":" seed ":" size
//	family := cache | counters | pipeline | prodcons | workpool
//	seed   := decimal uint64
//	size   := "small" | "medium" | "large" | params
//	params := param ("," param)*          e.g.  t4,s8,o128,l50
//	param  := ("t"|"s"|"o"|"l") decimal   (threads, shared, ops, lock density;
//	                                       omitted params default to "small")
//
// Parsing is strict and fail-closed: unknown families, duplicate or
// unknown parameter keys, malformed numbers and out-of-range values all
// produce deterministic errors.
func Parse(text string) (Spec, error) {
	parts := strings.Split(text, ":")
	if len(parts) != 3 {
		return Spec{}, fmt.Errorf("scenario: spec %q: want family:seed:size", text)
	}
	spec := Spec{Family: parts[0]}
	seed, err := strconv.ParseUint(parts[1], 10, 64)
	if err != nil {
		return Spec{}, fmt.Errorf("scenario: spec %q: bad seed %q", text, parts[1])
	}
	spec.Seed = seed

	if preset, ok := sizes[parts[2]]; ok {
		spec.Threads, spec.Shared, spec.Ops, spec.LockDensity =
			preset.Threads, preset.Shared, preset.Ops, preset.LockDensity
	} else {
		preset := sizes["small"]
		spec.Threads, spec.Shared, spec.Ops, spec.LockDensity =
			preset.Threads, preset.Shared, preset.Ops, preset.LockDensity
		seen := map[byte]bool{}
		for _, p := range strings.Split(parts[2], ",") {
			if len(p) < 2 {
				return Spec{}, fmt.Errorf("scenario: spec %q: bad parameter %q", text, p)
			}
			key := p[0]
			n, err := strconv.Atoi(p[1:])
			if err != nil {
				return Spec{}, fmt.Errorf("scenario: spec %q: bad parameter value %q", text, p)
			}
			if seen[key] {
				return Spec{}, fmt.Errorf("scenario: spec %q: duplicate parameter %q", text, string(key))
			}
			seen[key] = true
			switch key {
			case 't':
				spec.Threads = n
			case 's':
				spec.Shared = n
			case 'o':
				spec.Ops = n
			case 'l':
				spec.LockDensity = n
			default:
				return Spec{}, fmt.Errorf("scenario: spec %q: unknown parameter key %q", text, string(key))
			}
		}
	}
	if err := spec.Validate(); err != nil {
		return Spec{}, err
	}
	return spec, nil
}

// ParseList decodes a comma-free list of specs separated by ";" or
// whitespace (flag-friendly: -scenario "a:1:small;b:2:medium").
func ParseList(text string) ([]Spec, error) {
	var out []Spec
	for _, f := range strings.FieldsFunc(text, func(r rune) bool { return r == ';' || r == ' ' }) {
		s, err := Parse(f)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("scenario: empty spec list %q", text)
	}
	return out, nil
}

// SizeNames returns the shorthand size classes in sorted order (for
// usage strings).
func SizeNames() []string {
	var names []string
	for n := range sizes {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ---------------------------------------------------------------------------
// Seeded PRNG: splitmix64. Deliberately not math/rand — the stream is
// part of the spec-to-source contract and must never drift with the Go
// version.

type prng struct{ state uint64 }

// newPRNG derives an independent stream per (seed, purpose) pair so
// adding a draw to one generation site never shifts another family's
// stream.
func newPRNG(seed uint64, purpose string) *prng {
	h := uint64(1469598103934665603) // FNV-1a offset basis
	for i := 0; i < len(purpose); i++ {
		h ^= uint64(purpose[i])
		h *= 1099511628211
	}
	return &prng{state: seed ^ h}
}

func (p *prng) next() uint64 {
	p.state += 0x9e3779b97f4a7c15
	z := p.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// intn returns a value in [0, n).
func (p *prng) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(p.next() % uint64(n))
}

// pct returns true with probability density/100.
func (p *prng) pct(density int) bool {
	return p.intn(100) < density
}

// odd returns a small odd constant in [lo, hi] (odd multipliers keep
// generated index walks full-period over power-of-two ranges).
func (p *prng) odd(lo, hi int) int {
	v := lo + p.intn(hi-lo+1)
	if v%2 == 0 {
		v++
	}
	if v > hi {
		v = lo | 1
	}
	return v
}
