package scenario

import (
	"flag"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

func TestParseRoundTrip(t *testing.T) {
	for _, text := range []string{
		"prodcons:1:small",
		"workpool:42:medium",
		"pipeline:7:large",
		"cache:123456789:t4,s8,o128,l50",
		"counters:18446744073709551615:t8,s64,o4096,l0",
	} {
		sp, err := Parse(text)
		if err != nil {
			t.Fatalf("Parse(%q): %v", text, err)
		}
		again, err := Parse(sp.String())
		if err != nil {
			t.Fatalf("Parse(String(%q)) = %q: %v", text, sp.String(), err)
		}
		if again != sp {
			t.Errorf("round trip %q: %+v != %+v", text, again, sp)
		}
	}
}

func TestParseSizePresets(t *testing.T) {
	small, _ := Parse("cache:9:small")
	explicit, _ := Parse("cache:9:t2,s4,o16,l60")
	if small != explicit {
		t.Errorf("small preset %+v != explicit %+v", small, explicit)
	}
	// Partial params inherit the small preset for omitted keys.
	part, err := Parse("cache:9:o32")
	if err != nil {
		t.Fatal(err)
	}
	want := Spec{Family: "cache", Seed: 9, Threads: 2, Shared: 4, Ops: 32, LockDensity: 60}
	if part != want {
		t.Errorf("partial params %+v, want %+v", part, want)
	}
}

// TestValidateNegatives pins the fail-closed diagnostics byte-for-byte:
// spec validation errors are part of the CLI surface (racecheck -gen
// prints them) and must stay deterministic.
func TestValidateNegatives(t *testing.T) {
	cases := []struct {
		text string
		want string
	}{
		{"bogus:1:small", `scenario: unknown family "bogus" (want one of cache, counters, pipeline, prodcons, workpool)`},
		{"cache:1:t0,s4,o16,l60", `scenario: cache: threads must be in [1,8], got 0`},
		{"prodcons:1:t1,s4,o16,l60", `scenario: prodcons: threads must be in [2,8], got 1`},
		{"pipeline:1:t9,s4,o16,l60", `scenario: pipeline: threads must be in [2,8], got 9`},
		{"counters:1:t2,s0,o16,l60", `scenario: counters: shared must be in [1,64], got 0`},
		{"counters:1:t2,s4,o5000,l60", `scenario: counters: ops must be in [1,4096], got 5000`},
		{"workpool:1:t2,s4,o16,l101", `scenario: workpool: lock density must be in [0,100], got 101`},
		{"cache:1", `scenario: spec "cache:1": want family:seed:size`},
		{"cache:x:small", `scenario: spec "cache:x:small": bad seed "x"`},
		{"cache:1:t2,t3", `scenario: spec "cache:1:t2,t3": duplicate parameter "t"`},
		{"cache:1:z9", `scenario: spec "cache:1:z9": unknown parameter key "z"`},
		{"cache:1:t", `scenario: spec "cache:1:t": bad parameter "t"`},
	}
	for _, c := range cases {
		_, err := Parse(c.text)
		if err == nil {
			t.Errorf("Parse(%q): want error, got nil", c.text)
			continue
		}
		if err.Error() != c.want {
			t.Errorf("Parse(%q):\n got %q\nwant %q", c.text, err.Error(), c.want)
		}
	}
}

func TestParseList(t *testing.T) {
	specs, err := ParseList("cache:1:small;counters:2:small prodcons:3:medium")
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 3 {
		t.Fatalf("got %d specs, want 3", len(specs))
	}
	if _, err := ParseList("  "); err == nil {
		t.Error("empty list: want error")
	}
	if _, err := ParseList("cache:1:small;bogus:2:small"); err == nil {
		t.Error("list with invalid member: want error")
	}
}

// TestGenerateDeterminism is the core generator contract: same Spec →
// byte-identical source, run after run and regardless of GOMAXPROCS.
func TestGenerateDeterminism(t *testing.T) {
	specs := []Spec{}
	for _, fam := range Families {
		for seed := uint64(1); seed <= 3; seed++ {
			sp, err := Parse(fam + ":1:medium")
			if err != nil {
				t.Fatal(err)
			}
			sp.Seed = seed
			specs = append(specs, sp)
		}
	}

	first := make([]string, len(specs))
	for i, sp := range specs {
		first[i] = MustGenerate(sp)
	}

	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)
	for _, procs := range []int{1, 8} {
		runtime.GOMAXPROCS(procs)
		var wg sync.WaitGroup
		got := make([]string, len(specs))
		for i, sp := range specs {
			wg.Add(1)
			go func(i int, sp Spec) {
				defer wg.Done()
				got[i] = MustGenerate(sp)
			}(i, sp)
		}
		wg.Wait()
		for i := range specs {
			if got[i] != first[i] {
				t.Errorf("GOMAXPROCS=%d: %s: source differs from first generation", procs, specs[i])
			}
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	for _, fam := range Families {
		a, _ := Parse(fam + ":1:small")
		b, _ := Parse(fam + ":2:small")
		if MustGenerate(a) == MustGenerate(b) {
			t.Errorf("%s: seeds 1 and 2 generated identical source", fam)
		}
	}
}

func TestGenerateRejectsInvalid(t *testing.T) {
	if _, err := Generate(Spec{Family: "cache"}); err == nil {
		t.Error("Generate on invalid spec: want error")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustGenerate on invalid spec: want panic")
		}
	}()
	MustGenerate(Spec{Family: "nope", Seed: 1, Threads: 1, Shared: 1, Ops: 1})
}

// TestGolden pins one small spec per family byte-for-byte. Regenerate
// with: go test ./internal/scenario/ -run TestGolden -update
func TestGolden(t *testing.T) {
	for _, fam := range Families {
		fam := fam
		t.Run(fam, func(t *testing.T) {
			sp, err := Parse(fam + ":1:small")
			if err != nil {
				t.Fatal(err)
			}
			src := MustGenerate(sp)
			path := filepath.Join("testdata", "golden", fam+".mc")
			if *update {
				if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update): %v", err)
			}
			if src != string(want) {
				t.Errorf("%s: generated source diverged from golden %s;\nrerun with -update and review the diff", sp, path)
			}
			if !strings.Contains(src, "racecheck -gen '"+sp.String()+"'") {
				t.Errorf("%s: header lacks repro hint", sp)
			}
		})
	}
}

func TestMinimizePassthrough(t *testing.T) {
	sp, _ := Parse("counters:1:small")
	if got := Minimize(sp); got != sp {
		t.Errorf("Minimize on passing spec changed it: %+v", got)
	}
}

func TestToBenchmark(t *testing.T) {
	sp, _ := Parse("prodcons:5:small")
	b, err := ToBenchmark(sp)
	if err != nil {
		t.Fatal(err)
	}
	if b.Name != sp.Name() || b.Class != "scenario" || b.Source == "" {
		t.Errorf("bad benchmark adapter: %+v", b)
	}
	if b.ProfileWorld(0) == nil || b.EvalWorld(4) == nil {
		t.Error("nil worlds from adapter")
	}
	if _, err := ToBenchmark(Spec{Family: "nope"}); err == nil {
		t.Error("ToBenchmark on invalid spec: want error")
	}
}
