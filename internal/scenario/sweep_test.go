package scenario

import (
	"testing"

	"repro/internal/core"
	"repro/internal/trace"
)

// TestDifferentialSeedSweep extends the PR4 checker-differential sweep
// from the nine fixed benchmarks to generated programs: every swept
// scenario's original (racy) program runs under 16 schedule seeds with
// the epoch checker and the full-vector oracle attached to the same
// event stream, and the verdicts must be identical on every schedule.
func TestDifferentialSeedSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("seed sweep is the long differential pass")
	}
	// Two specs per family: the small preset plus a racier, larger
	// variant. 10 scenarios × 16 schedule seeds = 160 differential runs.
	var specs []Spec
	for _, fam := range Families {
		small, err := Parse(fam + ":1:small")
		if err != nil {
			t.Fatal(err)
		}
		specs = append(specs, small,
			Spec{Family: fam, Seed: 2, Threads: 4, Shared: 4, Ops: 32, LockDensity: 25})
	}

	for _, spec := range specs {
		spec := spec
		t.Run(spec.Name(), func(t *testing.T) {
			t.Parallel()
			prog, err := core.Load(spec.Name(), MustGenerate(spec))
			if err != nil {
				t.Fatal(err)
			}
			for seed := uint64(0); seed < 16; seed++ {
				ep, vc := trace.NewChecker(0), trace.NewVectorChecker(0)
				rc := core.RunConfig{World: spec.world(), Seed: seed*2654435761 + 17}
				if r := core.CheckDynamicRacesWith(prog, nil, rc, ep, vc); r.Err != nil {
					t.Fatalf("seed %d run: %v (repro: racecheck -gen '%s')", seed, r.Err, spec)
				}
				if !trace.SameVerdicts(ep.Races(), vc.Races()) {
					t.Fatalf("seed %d: verdicts diverged\nepoch:  %v\nvector: %v\nrepro: racecheck -gen '%s'",
						seed, ep.Races(), vc.Races(), spec)
				}
			}
		})
	}
}

// TestSweepManifestsRaces guards the sweep's power: across the swept
// schedules at least one generated original must manifest a race, or
// the agreement assertion is vacuous.
func TestSweepManifestsRaces(t *testing.T) {
	racy := 0
	for _, fam := range Families {
		spec := Spec{Family: fam, Seed: 2, Threads: 4, Shared: 4, Ops: 32, LockDensity: 25}
		prog, err := core.Load(spec.Name(), MustGenerate(spec))
		if err != nil {
			t.Fatal(err)
		}
		for seed := uint64(0); seed < 4; seed++ {
			chk := trace.NewChecker(0)
			rc := core.RunConfig{World: spec.world(), Seed: seed*2654435761 + 17}
			if r := core.CheckDynamicRacesWith(prog, nil, rc, chk); r.Err != nil {
				t.Fatalf("%s seed %d: %v", spec, seed, r.Err)
			}
			racy += len(trace.VerdictSet(chk.Races()))
		}
	}
	if racy == 0 {
		t.Error("no low-density generated scenario manifested a race; the differential sweep is vacuous")
	}
}
