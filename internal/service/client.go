package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"strings"
	"time"

	"repro/internal/obs"
)

// Client talks to a chimerad server. The zero HTTP client applies no
// overall timeout — Wait long-polls are bounded per request instead.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient returns a client for a chimerad base URL (e.g.
// "http://localhost:8377").
func NewClient(base string) *Client {
	return &Client{base: strings.TrimRight(base, "/"), hc: &http.Client{}}
}

// do issues one JSON round trip. Error bodies ({"error": ...}) become Go
// errors carrying the server's message.
func (c *Client) do(method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, c.base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		var e struct {
			Error string `json:"error"`
		}
		if json.NewDecoder(resp.Body).Decode(&e) == nil && e.Error != "" {
			return fmt.Errorf("%s: %s", resp.Status, e.Error)
		}
		return fmt.Errorf("%s %s: %s", method, path, resp.Status)
	}
	if out != nil {
		return json.NewDecoder(resp.Body).Decode(out)
	}
	return nil
}

// Submit posts a job spec and returns the accepted job's view.
func (c *Client) Submit(spec *JobSpec) (*JobView, error) {
	v := new(JobView)
	if err := c.do("POST", "/v1/jobs", spec, v); err != nil {
		return nil, err
	}
	return v, nil
}

// Job polls one job.
func (c *Client) Job(id string) (*JobView, error) {
	v := new(JobView)
	if err := c.do("GET", "/v1/jobs/"+url.PathEscape(id), nil, v); err != nil {
		return nil, err
	}
	return v, nil
}

// Wait long-polls until the job is terminal. The server bounds every
// job with its job timeout, so this terminates.
func (c *Client) Wait(id string) (*JobView, error) {
	for {
		v := new(JobView)
		err := c.do("GET", "/v1/jobs/"+url.PathEscape(id)+"/wait?timeout="+url.QueryEscape((30*time.Second).String()), nil, v)
		if err != nil {
			return nil, err
		}
		if v.Terminal() {
			return v, nil
		}
	}
}

// UploadLog streams a CHIMLOG2 log into an awaiting-log job.
func (c *Client) UploadLog(id string, r io.Reader) (int64, error) {
	req, err := http.NewRequest("PUT", c.base+"/v1/jobs/"+url.PathEscape(id)+"/log", r)
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := c.hc.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		var e struct {
			Error string `json:"error"`
		}
		if json.NewDecoder(resp.Body).Decode(&e) == nil && e.Error != "" {
			return 0, fmt.Errorf("%s: %s", resp.Status, e.Error)
		}
		return 0, fmt.Errorf("upload log: %s", resp.Status)
	}
	var out struct {
		LogBytes int64 `json:"log_bytes"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return 0, err
	}
	return out.LogBytes, nil
}

// DownloadLog streams a job's CHIMLOG2 spool to w.
func (c *Client) DownloadLog(id string, w io.Writer) (int64, error) {
	resp, err := c.hc.Get(c.base + "/v1/jobs/" + url.PathEscape(id) + "/log")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		return 0, fmt.Errorf("download log: %s", resp.Status)
	}
	return io.Copy(w, resp.Body)
}

// Metrics fetches the server's /metrics.json document.
func (c *Client) Metrics() (*obs.ServiceMetrics, error) {
	m := new(obs.ServiceMetrics)
	if err := c.do("GET", "/metrics.json", nil, m); err != nil {
		return nil, err
	}
	return m, nil
}

// MetricsText fetches the server's Prometheus exposition at /metrics.
func (c *Client) MetricsText() ([]byte, error) {
	resp, err := c.hc.Get(c.base + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		return nil, fmt.Errorf("metrics: %s", resp.Status)
	}
	return io.ReadAll(resp.Body)
}

// Trace fetches one retained trace by trace ID or job ID.
func (c *Client) Trace(id string) (*TraceRecord, error) {
	rec := new(TraceRecord)
	if err := c.do("GET", "/debug/traces/"+url.PathEscape(id), nil, rec); err != nil {
		return nil, err
	}
	return rec, nil
}

// RemoteRun is racecheck's -server client mode: it ships the parsed
// request to a chimerad server as an analyze job, waits for the verdict,
// and relays stdout/stderr/exit code verbatim. Because the server runs
// the identical RunRequest path, the relayed verdict is byte-identical
// to running the same command line offline. The one local step is
// reading the source file: the client inlines it so the server never
// touches client paths, while Args keeps the display path so output
// matches the offline run.
//
// -trace is handled client-side: the path never reaches the server.
// The job is asked to return its span tree (WantTrace) and the client
// renders it as a Perfetto file locally, so a server-mode trace covers
// queue wait, spool I/O, every pipeline stage, and verdict encode.
func RemoteRun(server, tenant string, req *Request, out, errOut io.Writer) int {
	tracePath := req.TracePath
	req.TracePath = ""
	if err := req.ValidateRemote(); err != nil {
		fmt.Fprintf(errOut, "racecheck: -server: %v\n", err)
		return ExitUsage
	}
	if len(req.Args) == 1 && !req.HasSource {
		b, err := os.ReadFile(req.Args[0])
		if err != nil {
			// Identical to the offline CLI's read failure.
			fmt.Fprintln(errOut, "racecheck:", err)
			return ExitFailure
		}
		req.Source = string(b)
		req.HasSource = true
	}
	c := NewClient(server)
	accepted, err := c.Submit(&JobSpec{
		Kind:      JobAnalyze,
		Tenant:    tenant,
		Request:   req,
		TraceID:   req.TraceID,
		WantTrace: tracePath != "",
	})
	if err != nil {
		fmt.Fprintf(errOut, "racecheck: server: %v\n", err)
		return ExitFailure
	}
	v, err := c.Wait(accepted.ID)
	if err != nil {
		fmt.Fprintf(errOut, "racecheck: server: %v\n", err)
		return ExitFailure
	}
	if v.State != StateDone || v.Result == nil {
		fmt.Fprintf(errOut, "racecheck: server: job %s failed: %s\n", v.ID, v.Error)
		return ExitFailure
	}
	io.WriteString(out, v.Result.Stdout)
	io.WriteString(errOut, v.Result.Stderr)
	if tracePath != "" {
		if v.Result.Trace == nil {
			fmt.Fprintf(errOut, "racecheck: server: job %s returned no trace\n", v.ID)
			return ExitArtifact
		}
		data, err := obs.PerfettoNodes([]*obs.SpanNode{v.Result.Trace})
		if err == nil {
			err = os.WriteFile(tracePath, data, 0o644)
		}
		if err != nil {
			fmt.Fprintf(errOut, "racecheck: write %s: %v\n", tracePath, err)
			return ExitArtifact
		}
		fmt.Fprintf(out, "  trace written to %s\n", tracePath)
	}
	return v.Result.ExitCode
}
