package service

import (
	"bytes"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/oskit"
	"repro/internal/pool"
	"repro/internal/scenario"
	"repro/internal/summary"
)

// EngineConfig sizes an Engine. Zero values select the defaults noted.
type EngineConfig struct {
	// Shards is the worker-shard count (default 4). Jobs are routed by
	// spec hash, so identical re-submissions serialize on one shard.
	Shards int
	// Depth is the per-shard queue capacity (default 256). A full shard
	// rejects with pool.ErrFull rather than blocking the submitter.
	Depth int
	// SpoolDir holds CHIMLOG2 spools (default: the OS temp dir). One
	// file per record/replay-verify job, named by job ID.
	SpoolDir string
	// JobTimeout bounds each job's execution (default 2m). A job still
	// running at the deadline is marked failed and its shard moves on;
	// this is also what bounds graceful drain.
	JobTimeout time.Duration
}

// Engine is the job engine behind chimerad: a sharded worker pool
// (internal/pool) executing Jobs against per-tenant environments that
// share one content-addressed summary store through tenant-prefixed
// views. It is safe for concurrent use.
type Engine struct {
	cfg   EngineConfig
	store *summary.Store
	pool  *pool.Sharded

	mu       sync.Mutex
	tenants  map[string]*tenantState
	jobs     map[string]*Job
	order    []string // job IDs in submission order
	seq      int
	draining bool
}

// tenantState is one tenant's slice of the engine: its own whole-program
// cache and its view of the shared summary store. The view rewrites
// every key through summary.DeriveKey with the tenant label, so tenants
// can never collide on — or observe — each other's entries, while the
// per-view counters give the tenant's own hit/miss traffic.
type tenantState struct {
	name string
	env  *Env
	jobs int64
}

// NewEngine starts an engine with cfg's shards running.
func NewEngine(cfg EngineConfig) *Engine {
	if cfg.Shards <= 0 {
		cfg.Shards = 4
	}
	if cfg.Depth <= 0 {
		cfg.Depth = 256
	}
	if cfg.JobTimeout <= 0 {
		cfg.JobTimeout = 2 * time.Minute
	}
	if cfg.SpoolDir == "" {
		cfg.SpoolDir = os.TempDir()
	}
	return &Engine{
		cfg:     cfg,
		store:   summary.NewStore(),
		pool:    pool.NewSharded(cfg.Shards, cfg.Depth),
		tenants: make(map[string]*tenantState),
		jobs:    make(map[string]*Job),
	}
}

// tenant returns (creating on first use) the named tenant. e.mu held.
func (e *Engine) tenant(name string) *tenantState {
	t, ok := e.tenants[name]
	if !ok {
		view := e.store.View(name)
		t = &tenantState{
			name: name,
			env:  &Env{Cache: core.NewIncrementalCache(view), Store: view},
		}
		e.tenants[name] = t
	}
	return t
}

// envFor returns the tenant's environment.
func (e *Engine) envFor(name string) *Env {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.tenant(name).env
}

// Submit validates, registers and schedules a job. Replay-verify jobs
// expecting an upload are registered in awaiting-log and scheduled by
// AttachLog instead. The returned error is pool.ErrDraining when the
// engine is shutting down and pool.ErrFull when the routed shard's
// queue is at capacity.
func (e *Engine) Submit(spec *JobSpec) (*Job, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	hash := spec.Hash()

	e.mu.Lock()
	if e.draining {
		e.mu.Unlock()
		return nil, pool.ErrDraining
	}
	e.seq++
	job := &Job{
		id:      fmt.Sprintf("j%06d-%s", e.seq, hash[:12]),
		spec:    spec,
		hash:    hash,
		state:   StateQueued,
		created: time.Now(),
		done:    make(chan struct{}),
	}
	job.spool = filepath.Join(e.cfg.SpoolDir, job.id+".clog")
	e.jobs[job.id] = job
	e.order = append(e.order, job.id)
	e.tenant(spec.Tenant).jobs++
	e.mu.Unlock()

	if spec.Kind == JobReplayVerify && spec.LogUpload {
		job.mu.Lock()
		job.state = StateAwaitingLog
		job.mu.Unlock()
		return job, nil
	}
	if err := e.schedule(job); err != nil {
		return job, err
	}
	return job, nil
}

// schedule enqueues the job on its hash-routed shard.
func (e *Engine) schedule(job *Job) error {
	var key uint64
	if b, err := hex.DecodeString(job.hash[:16]); err == nil {
		key = binary.BigEndian.Uint64(b)
	}
	if err := e.pool.Submit(key, func() { e.runJob(job) }); err != nil {
		job.complete(nil, fmt.Sprintf("submit: %v", err))
		return err
	}
	return nil
}

// ErrUnknownJob and ErrNotAwaitingLog classify AttachLog/OpenLog
// failures for the transport layer (404 vs 409).
var (
	ErrUnknownJob     = errors.New("unknown job")
	ErrNotAwaitingLog = errors.New("job is not awaiting a log")
)

// AttachLog streams a CHIMLOG2 upload into an awaiting-log job's spool
// (constant memory — an io.Copy to disk) and schedules the job. It
// returns the byte count spooled.
func (e *Engine) AttachLog(id string, r io.Reader) (int64, error) {
	job, ok := e.Job(id)
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrUnknownJob, id)
	}
	job.mu.Lock()
	if job.state != StateAwaitingLog {
		state := job.state
		job.mu.Unlock()
		return 0, fmt.Errorf("%w: %s (state %s)", ErrNotAwaitingLog, id, state)
	}
	job.state = StateQueued // claimed: a concurrent second upload fails above
	job.mu.Unlock()

	f, err := os.Create(job.spool)
	if err != nil {
		job.complete(nil, fmt.Sprintf("log spool: %v", err))
		return 0, err
	}
	n, err := io.Copy(f, r)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		job.complete(nil, fmt.Sprintf("log upload: %v", err))
		return n, err
	}
	if err := e.schedule(job); err != nil {
		return n, err
	}
	return n, nil
}

// OpenLog opens a job's CHIMLOG2 spool for streaming out. The caller
// closes the returned file.
func (e *Engine) OpenLog(id string) (*os.File, error) {
	job, ok := e.Job(id)
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownJob, id)
	}
	return os.Open(job.spool)
}

// Job returns a registered job by ID.
func (e *Engine) Job(id string) (*Job, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	j, ok := e.jobs[id]
	return j, ok
}

// Views snapshots every job in submission order.
func (e *Engine) Views() []JobView {
	e.mu.Lock()
	ids := append([]string(nil), e.order...)
	jobs := make([]*Job, len(ids))
	for i, id := range ids {
		jobs[i] = e.jobs[id]
	}
	e.mu.Unlock()
	views := make([]JobView, len(jobs))
	for i, j := range jobs {
		views[i] = j.View()
	}
	return views
}

// Draining reports whether the engine has stopped admitting jobs.
func (e *Engine) Draining() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.draining
}

// Drain stops admission and waits up to timeout for queued and running
// jobs to finish, reporting whether the pool drained completely. Each
// in-flight job is individually bounded by JobTimeout, so a drain
// timeout of at least JobTimeout plus queue slack always succeeds.
func (e *Engine) Drain(timeout time.Duration) bool {
	e.mu.Lock()
	e.draining = true
	e.mu.Unlock()
	stop := make(chan struct{})
	t := time.AfterFunc(timeout, func() { close(stop) })
	defer t.Stop()
	return e.pool.Drain(stop)
}

// Metrics snapshots the engine: job counts by state, pool occupancy, and
// per-tenant cache and summary-store traffic with hit ratios.
func (e *Engine) Metrics() *obs.ServiceMetrics {
	e.mu.Lock()
	jobs := make([]*Job, 0, len(e.jobs))
	for _, j := range e.jobs {
		jobs = append(jobs, j)
	}
	tenants := make([]*tenantState, 0, len(e.tenants))
	for _, t := range e.tenants {
		tenants = append(tenants, t)
	}
	draining := e.draining
	e.mu.Unlock()

	m := &obs.ServiceMetrics{Schema: 1, Draining: draining}
	for _, j := range jobs {
		switch j.View().State {
		case StateQueued:
			m.Jobs.Queued++
		case StateAwaitingLog:
			m.Jobs.AwaitingLog++
		case StateRunning:
			m.Jobs.Running++
		case StateDone:
			m.Jobs.Done++
		case StateFailed:
			m.Jobs.Failed++
		}
	}
	pending, completed := e.pool.Stats()
	m.Pool = obs.PoolCounts{Shards: e.pool.Shards(), Pending: pending, Completed: completed}

	sort.Slice(tenants, func(i, j int) bool { return tenants[i].name < tenants[j].name })
	for _, t := range tenants {
		hits, partial, misses := t.env.Cache.Stats()
		st := t.env.Store.Stats()
		m.Tenants = append(m.Tenants, obs.TenantMetrics{
			Tenant:        t.name,
			Jobs:          t.jobs,
			Cache:         obs.CacheStats{Hits: hits, PartialHits: partial, Misses: misses},
			CacheHitRatio: obs.Ratio(hits+partial, hits+partial+misses),
			SummaryStore: obs.SummaryStoreStats{
				Hits: st.Hits, Misses: st.Misses, Puts: st.Puts,
				Evictions: st.Evictions, Entries: st.Entries,
				MHPHits: st.MHPHits, MHPMisses: st.MHPMisses,
			},
			SummaryHitRatio: obs.Ratio(st.Hits, st.Hits+st.Misses),
		})
	}
	return m
}

// runJob executes one job on its shard with the configured timeout. The
// executor runs in a helper goroutine so a wedged job fails at the
// deadline and frees the shard; a late result from the abandoned
// executor is dropped by Job.complete.
func (e *Engine) runJob(job *Job) {
	job.setRunning()
	done := make(chan *JobResult, 1)
	go func() {
		defer func() {
			if p := recover(); p != nil {
				done <- &JobResult{ExitCode: ExitFailure, Stderr: fmt.Sprintf("job panic: %v\n", p)}
			}
		}()
		done <- e.execute(job)
	}()
	select {
	case res := <-done:
		job.complete(res, "") // nonzero exits are verdicts, not engine failures
	case <-time.After(e.cfg.JobTimeout):
		job.complete(nil, fmt.Sprintf("job timed out after %s", e.cfg.JobTimeout))
	}
}

// execute dispatches on the job kind.
func (e *Engine) execute(job *Job) *JobResult {
	spec := job.spec
	switch spec.Kind {
	case JobAnalyze:
		return e.execAnalyze(spec)
	case JobRecord:
		return e.execRecord(job, spec)
	case JobReplayVerify:
		return e.execReplayVerify(job, spec)
	case JobGenPipeline:
		return execGen(spec)
	}
	return &JobResult{ExitCode: ExitUsage, Stderr: fmt.Sprintf("unknown job kind %q\n", spec.Kind)}
}

// execAnalyze runs the canonical racecheck pipeline against the tenant's
// environment. The captured stdout/stderr are byte-identical to the
// offline CLI on the same request: RunRequest is the single verdict
// path, and the tenant caches are proven pure accelerators.
func (e *Engine) execAnalyze(spec *JobSpec) *JobResult {
	env := e.envFor(spec.Tenant)
	var out, errOut bytes.Buffer
	code := RunRequest(spec.Request, env, &out, &errOut)
	return &JobResult{ExitCode: code, Stdout: out.String(), Stderr: errOut.String()}
}

// instrumentFor loads and instruments the program a record or
// replay-verify job describes: tenant-cached analysis, optional MHP
// refinement, then the named instrumentation config.
func (e *Engine) instrumentFor(tenant, name, source, config string, useMHP bool) (*core.Instrumented, error) {
	env := e.envFor(tenant)
	if name == "" {
		name = "prog"
	}
	prog, err := env.loadProgram(name, source, 1)
	if err != nil {
		return nil, err
	}
	rep := prog.Races
	if useMHP {
		rep = prog.RefinedRaces()
	}
	opts, ok := optionsFor(config)
	if !ok {
		return nil, fmt.Errorf("unknown config %q", config)
	}
	return prog.InstrumentWith(rep, nil, opts)
}

// execRecord instruments the program and records one execution, with the
// CHIMLOG2 log streamed to the job's disk spool as records commit.
func (e *Engine) execRecord(job *Job, spec *JobSpec) *JobResult {
	ip, err := e.instrumentFor(spec.Tenant, spec.Name, spec.Source, spec.config(), spec.MHP)
	if err != nil {
		return &JobResult{ExitCode: ExitFailure, Stderr: fmt.Sprintf("record: %v\n", err)}
	}
	f, err := os.Create(job.spool)
	if err != nil {
		return &JobResult{ExitCode: ExitArtifact, Stderr: fmt.Sprintf("record: spool: %v\n", err)}
	}
	seed := spec.Seed
	if seed == 0 {
		seed = 1
	}
	res, _, _ := ip.RecordTo(core.RunConfig{World: oskit.NewWorld(seed), Seed: seed}, f)
	if cerr := f.Close(); cerr != nil && res.Err == nil {
		res.Err = cerr
	}
	if res.Err != nil {
		return &JobResult{ExitCode: ExitFailure, Stderr: fmt.Sprintf("record: %v\n", res.Err)}
	}
	fi, err := os.Stat(job.spool)
	if err != nil {
		return &JobResult{ExitCode: ExitArtifact, Stderr: fmt.Sprintf("record: spool: %v\n", err)}
	}
	hash := fmt.Sprintf("%016x", res.Hash64())
	return &JobResult{
		ExitCode:   ExitOK,
		Stdout:     fmt.Sprintf("%s: recorded %d bytes (seed=%d, output hash %s)\n", spec.Name, fi.Size(), seed, hash),
		LogBytes:   fi.Size(),
		OutputHash: hash,
	}
}

// execReplayVerify replays a CHIMLOG2 stream against the instrumented
// program straight from disk (replay.StreamReplayer — bounded memory)
// and verifies the replay: it must run clean, fully drain the order log,
// and, when the log came from a record job, bit-match that job's output
// hash.
func (e *Engine) execReplayVerify(job *Job, spec *JobSpec) *JobResult {
	logPath := job.spool
	expect := ""
	name, source, config, useMHP := spec.Name, spec.Source, spec.config(), spec.MHP
	if spec.LogJob != "" {
		src, ok := e.Job(spec.LogJob)
		if !ok {
			return &JobResult{ExitCode: ExitUsage, Stderr: fmt.Sprintf("replay-verify: unknown log_job %s\n", spec.LogJob)}
		}
		v := src.View()
		if v.Kind != JobRecord || v.State != StateDone || v.Result == nil {
			return &JobResult{ExitCode: ExitUsage, Stderr: fmt.Sprintf("replay-verify: log_job %s is not a finished record job\n", spec.LogJob)}
		}
		logPath = src.spool
		expect = v.Result.OutputHash
		if source == "" {
			name, source, config, useMHP = src.spec.Name, src.spec.Source, src.spec.config(), src.spec.MHP
		}
	}
	ip, err := e.instrumentFor(spec.Tenant, name, source, config, useMHP)
	if err != nil {
		return &JobResult{ExitCode: ExitFailure, Stderr: fmt.Sprintf("replay-verify: %v\n", err)}
	}
	f, err := os.Open(logPath)
	if err != nil {
		return &JobResult{ExitCode: ExitFailure, Stderr: fmt.Sprintf("replay-verify: %v\n", err)}
	}
	defer f.Close()
	// The replay seed deliberately differs from any recording seed:
	// determinism must come from the log alone.
	res, rerr := core.ReplayProgramStream(ip.Prog, ip.Table, f, core.RunConfig{World: oskit.NewWorld(977), Seed: 977})

	matches := rerr == nil
	hash := ""
	if res != nil {
		hash = fmt.Sprintf("%016x", res.Hash64())
	}
	if matches && expect != "" && hash != expect {
		matches = false
		rerr = fmt.Errorf("output hash %s differs from recorded %s", hash, expect)
	}
	r := &JobResult{ReplayMatches: &matches}
	if matches {
		r.ExitCode = ExitOK
		r.Stdout = fmt.Sprintf("%s: replay matches (output hash %s)\n", name, hash)
	} else {
		r.ExitCode = ExitFailure
		r.Stderr = fmt.Sprintf("%s: replay diverged: %v\n", name, rerr)
	}
	return r
}

// execGen pushes a generated scenario through the complete soundness
// pipeline. Stdout/stderr are byte-identical to `racecheck -gen` on the
// same spec (reportGen is the shared printer); the structured verdict
// fields come from the same pipeline Result.
func execGen(jobSpec *JobSpec) *JobResult {
	var out, errOut bytes.Buffer
	spec, err := scenario.Parse(jobSpec.Spec)
	if err != nil {
		fmt.Fprintln(&errOut, "racecheck:", err)
		return &JobResult{ExitCode: ExitUsage, Stderr: errOut.String()}
	}
	r := scenario.RunPipeline(spec)
	code := reportGen(r, spec, jobSpec.Verbose, &out, &errOut)

	certified := r.StagePassed("certify")
	replayMatches := r.StagePassed("replay")
	checkersAgree := r.StagePassed("differential") && r.StagePassed("clean")
	races := r.OriginalRaces
	return &JobResult{
		ExitCode:      code,
		Stdout:        out.String(),
		Stderr:        errOut.String(),
		Certified:     &certified,
		ReplayMatches: &replayMatches,
		CheckersAgree: &checkersAgree,
		CheckerRaces:  &races,
		Stages:        r.Stages,
	}
}
