package service

import (
	"bytes"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/oskit"
	"repro/internal/pool"
	"repro/internal/scenario"
	"repro/internal/summary"
)

// EngineConfig sizes an Engine. Zero values select the defaults noted.
type EngineConfig struct {
	// Shards is the worker-shard count (default 4). Jobs are routed by
	// spec hash, so identical re-submissions serialize on one shard.
	Shards int
	// Depth is the per-shard queue capacity (default 256). A full shard
	// rejects with pool.ErrFull rather than blocking the submitter.
	Depth int
	// SpoolDir holds CHIMLOG2 spools (default: the OS temp dir). One
	// file per record/replay-verify job, named by job ID.
	SpoolDir string
	// JobTimeout bounds each job's execution (default 2m). A job still
	// running at the deadline is marked failed and its shard moves on;
	// this is also what bounds graceful drain.
	JobTimeout time.Duration
	// Telemetry receives job/stage latency and spool-byte observations
	// (default: a fresh registry with the four job kinds pre-registered).
	Telemetry *obs.Telemetry
	// Logger receives structured job-lifecycle records. Nil is the
	// disabled logger: no output, no allocation.
	Logger *obs.Logger
	// TraceRing is how many recent job traces /debug/traces retains
	// (default 64).
	TraceRing int
}

// Engine is the job engine behind chimerad: a sharded worker pool
// (internal/pool) executing Jobs against per-tenant environments that
// share one content-addressed summary store through tenant-prefixed
// views. It is safe for concurrent use.
type Engine struct {
	cfg    EngineConfig
	store  *summary.Store
	pool   *pool.Sharded
	tel    *obs.Telemetry
	log    *obs.Logger
	traces *traceRing

	mu       sync.Mutex
	tenants  map[string]*tenantState
	jobs     map[string]*Job
	order    []string // job IDs in submission order
	seq      int
	draining bool
}

// tenantState is one tenant's slice of the engine: its own whole-program
// cache and its view of the shared summary store. The view rewrites
// every key through summary.DeriveKey with the tenant label, so tenants
// can never collide on — or observe — each other's entries, while the
// per-view counters give the tenant's own hit/miss traffic.
type tenantState struct {
	name string
	env  *Env
	jobs int64
}

// NewEngine starts an engine with cfg's shards running.
func NewEngine(cfg EngineConfig) *Engine {
	if cfg.Shards <= 0 {
		cfg.Shards = 4
	}
	if cfg.Depth <= 0 {
		cfg.Depth = 256
	}
	if cfg.JobTimeout <= 0 {
		cfg.JobTimeout = 2 * time.Minute
	}
	if cfg.SpoolDir == "" {
		cfg.SpoolDir = os.TempDir()
	}
	if cfg.Telemetry == nil {
		cfg.Telemetry = obs.NewTelemetry(
			string(JobAnalyze), string(JobRecord),
			string(JobReplayVerify), string(JobGenPipeline))
	}
	if cfg.TraceRing <= 0 {
		cfg.TraceRing = 64
	}
	return &Engine{
		cfg:     cfg,
		store:   summary.NewStore(),
		pool:    pool.NewSharded(cfg.Shards, cfg.Depth),
		tel:     cfg.Telemetry,
		log:     cfg.Logger,
		traces:  newTraceRing(cfg.TraceRing),
		tenants: make(map[string]*tenantState),
		jobs:    make(map[string]*Job),
	}
}

// tenant returns (creating on first use) the named tenant. e.mu held.
func (e *Engine) tenant(name string) *tenantState {
	t, ok := e.tenants[name]
	if !ok {
		view := e.store.View(name)
		t = &tenantState{
			name: name,
			env:  &Env{Cache: core.NewIncrementalCache(view), Store: view},
		}
		e.tenants[name] = t
	}
	return t
}

// envFor returns the tenant's environment.
func (e *Engine) envFor(name string) *Env {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.tenant(name).env
}

// Submit validates, registers and schedules a job. Replay-verify jobs
// expecting an upload are registered in awaiting-log and scheduled by
// AttachLog instead. The returned error is pool.ErrDraining when the
// engine is shutting down and pool.ErrFull when the routed shard's
// queue is at capacity.
func (e *Engine) Submit(spec *JobSpec) (*Job, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	hash := spec.Hash()

	e.mu.Lock()
	if e.draining {
		e.mu.Unlock()
		return nil, pool.ErrDraining
	}
	e.seq++
	job := &Job{
		id:      fmt.Sprintf("j%06d-%s", e.seq, hash[:12]),
		spec:    spec,
		hash:    hash,
		state:   StateQueued,
		created: time.Now(),
		done:    make(chan struct{}),
	}
	job.spool = filepath.Join(e.cfg.SpoolDir, job.id+".clog")
	job.traceID = traceIDFor(spec, e.seq, hash)
	e.jobs[job.id] = job
	e.order = append(e.order, job.id)
	e.tenant(spec.Tenant).jobs++
	e.mu.Unlock()

	// The job's span tree starts here: an open "request" root carrying
	// the trace identity, then the wait phase ("awaiting-log" for jobs
	// expecting an upload, "queue-wait" otherwise) as its first child.
	job.tracer = obs.NewTracer()
	job.rootSpan = job.tracer.Start("request").
		SetStr("trace_id", job.traceID).
		SetStr("job_id", job.id).
		SetStr("kind", string(spec.Kind)).
		SetStr("tenant", spec.Tenant)
	e.log.Info("job_submitted",
		obs.Str("trace_id", job.traceID), obs.Str("job", job.id),
		obs.Str("kind", string(spec.Kind)), obs.Str("tenant", spec.Tenant))

	if spec.Kind == JobReplayVerify && spec.LogUpload {
		job.waitSpan = job.tracer.Start("awaiting-log")
		job.mu.Lock()
		job.state = StateAwaitingLog
		job.mu.Unlock()
		return job, nil
	}
	job.waitSpan = job.tracer.Start("queue-wait")
	if err := e.schedule(job); err != nil {
		return job, err
	}
	return job, nil
}

// traceIDFor resolves a job's trace identity: the spec's, the embedded
// request's, or a server-minted one derived from the submission
// sequence number and spec hash.
func traceIDFor(spec *JobSpec, seq int, hash string) string {
	if spec.TraceID != "" {
		return spec.TraceID
	}
	if spec.Request != nil && spec.Request.TraceID != "" {
		return spec.Request.TraceID
	}
	return fmt.Sprintf("t%06d-%s", seq, hash[:8])
}

// schedule enqueues the job on its hash-routed shard.
func (e *Engine) schedule(job *Job) error {
	var key uint64
	if b, err := hex.DecodeString(job.hash[:16]); err == nil {
		key = binary.BigEndian.Uint64(b)
	}
	if err := e.pool.Submit(key, func() { e.runJob(job) }); err != nil {
		job.complete(nil, fmt.Sprintf("submit: %v", err))
		job.waitSpan.End()
		job.rootSpan.End()
		e.retire(job)
		return err
	}
	return nil
}

// ErrUnknownJob and ErrNotAwaitingLog classify AttachLog/OpenLog
// failures for the transport layer (404 vs 409).
var (
	ErrUnknownJob     = errors.New("unknown job")
	ErrNotAwaitingLog = errors.New("job is not awaiting a log")
)

// AttachLog streams a CHIMLOG2 upload into an awaiting-log job's spool
// (constant memory — an io.Copy to disk) and schedules the job. It
// returns the byte count spooled.
func (e *Engine) AttachLog(id string, r io.Reader) (int64, error) {
	job, ok := e.Job(id)
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrUnknownJob, id)
	}
	job.mu.Lock()
	if job.state != StateAwaitingLog {
		state := job.state
		job.mu.Unlock()
		return 0, fmt.Errorf("%w: %s (state %s)", ErrNotAwaitingLog, id, state)
	}
	job.state = StateQueued // claimed: a concurrent second upload fails above
	job.mu.Unlock()

	job.waitSpan.End() // awaiting-log is over; the upload is here
	sw := job.tracer.Start("spool-write")
	f, err := os.Create(job.spool)
	if err != nil {
		sw.End()
		job.complete(nil, fmt.Sprintf("log spool: %v", err))
		job.rootSpan.End()
		e.retire(job)
		return 0, err
	}
	n, err := io.Copy(f, r)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	sw.SetAttr("bytes", n).End()
	e.tel.AddSpoolBytes(n, 0)
	if err != nil {
		job.complete(nil, fmt.Sprintf("log upload: %v", err))
		job.rootSpan.End()
		e.retire(job)
		return n, err
	}
	job.waitSpan = job.tracer.Start("queue-wait")
	if err := e.schedule(job); err != nil {
		return n, err
	}
	return n, nil
}

// OpenLog opens a job's CHIMLOG2 spool for streaming out. The caller
// closes the returned file.
func (e *Engine) OpenLog(id string) (*os.File, error) {
	job, ok := e.Job(id)
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownJob, id)
	}
	return os.Open(job.spool)
}

// Job returns a registered job by ID.
func (e *Engine) Job(id string) (*Job, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	j, ok := e.jobs[id]
	return j, ok
}

// Views snapshots every job in submission order.
func (e *Engine) Views() []JobView {
	e.mu.Lock()
	ids := append([]string(nil), e.order...)
	jobs := make([]*Job, len(ids))
	for i, id := range ids {
		jobs[i] = e.jobs[id]
	}
	e.mu.Unlock()
	views := make([]JobView, len(jobs))
	for i, j := range jobs {
		views[i] = j.View()
	}
	return views
}

// Traces returns the retained trace ring, newest first.
func (e *Engine) Traces() []*TraceRecord { return e.traces.list() }

// Trace returns the newest retained trace whose trace ID or job ID
// matches.
func (e *Engine) Trace(id string) (*TraceRecord, bool) { return e.traces.find(id) }

// countReader counts bytes read through it (re-reads after a seek
// count again: the counter is I/O traffic, not file size).
type countReader struct {
	r io.ReadSeeker
	n int64
}

func (c *countReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

func (c *countReader) Seek(offset int64, whence int) (int64, error) {
	return c.r.Seek(offset, whence)
}

// Draining reports whether the engine has stopped admitting jobs.
func (e *Engine) Draining() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.draining
}

// Drain stops admission and waits up to timeout for queued and running
// jobs to finish, reporting whether the pool drained completely. Each
// in-flight job is individually bounded by JobTimeout, so a drain
// timeout of at least JobTimeout plus queue slack always succeeds.
func (e *Engine) Drain(timeout time.Duration) bool {
	e.mu.Lock()
	e.draining = true
	e.mu.Unlock()
	stop := make(chan struct{})
	t := time.AfterFunc(timeout, func() { close(stop) })
	defer t.Stop()
	return e.pool.Drain(stop)
}

// Metrics snapshots the engine: job counts by state, pool occupancy, and
// per-tenant cache and summary-store traffic with hit ratios.
func (e *Engine) Metrics() *obs.ServiceMetrics {
	e.mu.Lock()
	jobs := make([]*Job, 0, len(e.jobs))
	for _, j := range e.jobs {
		jobs = append(jobs, j)
	}
	tenants := make([]*tenantState, 0, len(e.tenants))
	for _, t := range e.tenants {
		tenants = append(tenants, t)
	}
	draining := e.draining
	e.mu.Unlock()

	m := &obs.ServiceMetrics{Schema: 2, Draining: draining}
	for _, j := range jobs {
		switch j.View().State {
		case StateQueued:
			m.Jobs.Queued++
		case StateAwaitingLog:
			m.Jobs.AwaitingLog++
		case StateRunning:
			m.Jobs.Running++
		case StateDone:
			m.Jobs.Done++
		case StateFailed:
			m.Jobs.Failed++
		}
	}
	pending, completed := e.pool.Stats()
	m.Pool = obs.PoolCounts{Shards: e.pool.Shards(), Pending: pending, Completed: completed}
	queued, running := e.pool.ShardStats()
	m.Shards = make([]obs.ShardMetrics, len(queued))
	for i := range queued {
		m.Shards[i] = obs.ShardMetrics{Shard: i, QueueDepth: queued[i], InFlight: running[i]}
	}
	m.Telemetry = e.tel.Snapshot()

	sort.Slice(tenants, func(i, j int) bool { return tenants[i].name < tenants[j].name })
	for _, t := range tenants {
		hits, partial, misses := t.env.Cache.Stats()
		st := t.env.Store.Stats()
		m.Tenants = append(m.Tenants, obs.TenantMetrics{
			Tenant:        t.name,
			Jobs:          t.jobs,
			Cache:         obs.CacheStats{Hits: hits, PartialHits: partial, Misses: misses},
			CacheHitRatio: obs.Ratio(hits+partial, hits+partial+misses),
			SummaryStore: obs.SummaryStoreStats{
				Hits: st.Hits, Misses: st.Misses, Puts: st.Puts,
				Evictions: st.Evictions, Entries: st.Entries,
				MHPHits: st.MHPHits, MHPMisses: st.MHPMisses,
			},
			SummaryHitRatio: obs.Ratio(st.Hits, st.Hits+st.Misses),
		})
	}
	return m
}

// runJob executes one job on its shard with the configured timeout. The
// executor runs in a helper goroutine so a wedged job fails at the
// deadline and frees the shard; a late result from the abandoned
// executor is dropped by Job.complete.
func (e *Engine) runJob(job *Job) {
	job.waitSpan.End()
	job.mu.Lock()
	job.queueWaitNS = job.waitSpan.WallNS()
	job.mu.Unlock()
	job.setRunning()

	run := job.tracer.Start("run")
	done := make(chan *JobResult, 1)
	go func() {
		defer func() {
			if p := recover(); p != nil {
				done <- &JobResult{ExitCode: ExitFailure, Stderr: fmt.Sprintf("job panic: %v\n", p)}
			}
		}()
		done <- e.execute(job)
	}()
	select {
	case res := <-done:
		run.End()
		job.mu.Lock()
		job.runNS = run.WallNS()
		job.mu.Unlock()
		// Measure the verdict's wire encoding as its own span: for
		// analyze jobs with large stdout this is real request time.
		enc := job.tracer.Start("verdict-encode")
		if b, err := json.Marshal(res); err == nil {
			enc.SetAttr("bytes", int64(len(b)))
		}
		enc.End()
		job.rootSpan.SetAttr("exit_code", int64(res.ExitCode)).End()
		if job.spec.WantTrace {
			if nodes := job.tracer.Nodes(); len(nodes) > 0 {
				res.Trace = nodes[0]
			}
		}
		job.complete(res, "") // nonzero exits are verdicts, not engine failures
	case <-time.After(e.cfg.JobTimeout):
		msg := fmt.Sprintf("job timed out after %s", e.cfg.JobTimeout)
		job.complete(nil, msg)
		run.End() // the abandoned executor may still add spans; snapshots won't see them
		job.mu.Lock()
		job.runNS = run.WallNS()
		job.mu.Unlock()
		job.rootSpan.SetStr("error", msg).End()
	}
	e.retire(job)
}

// retire flushes a finished job's observability: job and stage
// durations into the telemetry histograms, the span tree into the
// /debug/traces ring, and one structured lifecycle record into the log.
// Jobs that never started (queue rejection, upload failure) keep their
// trace and log record but do not pollute the latency histograms.
func (e *Engine) retire(job *Job) {
	v := job.View()
	nodes := job.tracer.Nodes()
	var root *obs.SpanNode
	if len(nodes) > 0 {
		root = nodes[0]
	}
	if v.Started != nil {
		e.tel.ObserveJob(string(v.Kind), v.RunNS)
		obs.Walk(nodes, func(n *obs.SpanNode) { e.tel.ObserveStage(n.Name, n.WallNS()) })
	}
	e.traces.push(&TraceRecord{
		TraceID:     v.TraceID,
		JobID:       v.ID,
		Kind:        v.Kind,
		Tenant:      v.Tenant,
		State:       v.State,
		QueueWaitNS: v.QueueWaitNS,
		RunNS:       v.RunNS,
		Spans:       root,
	})
	if !e.log.Enabled(obs.LevelInfo) {
		return
	}
	event := "job_done"
	exit := int64(0)
	if v.Result != nil {
		exit = int64(v.Result.ExitCode)
	}
	fields := []obs.Field{
		obs.Str("trace_id", v.TraceID),
		obs.Str("job", v.ID),
		obs.Str("kind", string(v.Kind)),
		obs.Str("tenant", v.Tenant),
		obs.Str("state", string(v.State)),
		obs.Int("exit_code", exit),
		obs.Int("queue_wait_ns", v.QueueWaitNS),
		obs.Int("run_ns", v.RunNS),
		obs.RawJSON("stages", stageDurationsJSON(root)),
	}
	if v.State == StateFailed {
		event = "job_failed"
		fields = append(fields, obs.Str("error", v.Error))
	}
	e.log.Info(event, fields...)
}

// stageDurationsJSON renders the request's top two span levels — the
// request phases and the pipeline stages under "run" — as one compact
// JSON object of nanosecond durations, in span start order.
func stageDurationsJSON(root *obs.SpanNode) []byte {
	var b bytes.Buffer
	b.WriteByte('{')
	first := true
	emit := func(path string, ns int64) {
		if !first {
			b.WriteByte(',')
		}
		first = false
		fmt.Fprintf(&b, "%q:%d", path, ns)
	}
	if root != nil {
		for _, c := range root.Children {
			emit(c.Name, c.WallNS())
			if c.Name == "run" {
				for _, s := range c.Children {
					emit("run/"+s.Name, s.WallNS())
				}
			}
		}
	}
	b.WriteByte('}')
	return b.Bytes()
}

// execute dispatches on the job kind.
func (e *Engine) execute(job *Job) *JobResult {
	spec := job.spec
	switch spec.Kind {
	case JobAnalyze:
		return e.execAnalyze(job, spec)
	case JobRecord:
		return e.execRecord(job, spec)
	case JobReplayVerify:
		return e.execReplayVerify(job, spec)
	case JobGenPipeline:
		return execGen(job.tracer, spec)
	}
	return &JobResult{ExitCode: ExitUsage, Stderr: fmt.Sprintf("unknown job kind %q\n", spec.Kind)}
}

// execAnalyze runs the canonical racecheck pipeline against the tenant's
// environment. The captured stdout/stderr are byte-identical to the
// offline CLI on the same request: RunRequest is the single verdict
// path, and the tenant caches are proven pure accelerators.
func (e *Engine) execAnalyze(job *Job, spec *JobSpec) *JobResult {
	env := e.envFor(spec.Tenant)
	// Shallow copy: the spec (and its request) may be shared across
	// re-submissions, but the tracer is strictly per-job.
	req := *spec.Request
	req.Tracer = job.tracer
	var out, errOut bytes.Buffer
	code := RunRequest(&req, env, &out, &errOut)
	return &JobResult{ExitCode: code, Stdout: out.String(), Stderr: errOut.String()}
}

// instrumentFor loads and instruments the program a record or
// replay-verify job describes: tenant-cached analysis, optional MHP
// refinement, then the named instrumentation config.
func (e *Engine) instrumentFor(tenant, name, source, config string, useMHP bool) (*core.Instrumented, error) {
	env := e.envFor(tenant)
	if name == "" {
		name = "prog"
	}
	prog, err := env.loadProgram(name, source, 1)
	if err != nil {
		return nil, err
	}
	rep := prog.Races
	if useMHP {
		rep = prog.RefinedRaces()
	}
	opts, ok := optionsFor(config)
	if !ok {
		return nil, fmt.Errorf("unknown config %q", config)
	}
	return prog.InstrumentWith(rep, nil, opts)
}

// execRecord instruments the program and records one execution, with the
// CHIMLOG2 log streamed to the job's disk spool as records commit.
func (e *Engine) execRecord(job *Job, spec *JobSpec) *JobResult {
	sp := job.tracer.Start("instrument")
	ip, err := e.instrumentFor(spec.Tenant, spec.Name, spec.Source, spec.config(), spec.MHP)
	sp.End()
	if err != nil {
		return &JobResult{ExitCode: ExitFailure, Stderr: fmt.Sprintf("record: %v\n", err)}
	}
	// The record span covers the recorded execution including its
	// streaming spool writes (RecordTo commits records straight to
	// disk), plus the spool open/close/stat around it.
	rec := job.tracer.Start("record")
	defer rec.End()
	f, err := os.Create(job.spool)
	if err != nil {
		return &JobResult{ExitCode: ExitArtifact, Stderr: fmt.Sprintf("record: spool: %v\n", err)}
	}
	seed := spec.Seed
	if seed == 0 {
		seed = 1
	}
	res, _, _ := ip.RecordTo(core.RunConfig{World: oskit.NewWorld(seed), Seed: seed}, f)
	if cerr := f.Close(); cerr != nil && res.Err == nil {
		res.Err = cerr
	}
	if res.Err != nil {
		return &JobResult{ExitCode: ExitFailure, Stderr: fmt.Sprintf("record: %v\n", res.Err)}
	}
	fi, err := os.Stat(job.spool)
	if err != nil {
		return &JobResult{ExitCode: ExitArtifact, Stderr: fmt.Sprintf("record: spool: %v\n", err)}
	}
	e.tel.AddSpoolBytes(fi.Size(), 0)
	hash := fmt.Sprintf("%016x", res.Hash64())
	rec.SetAttr("spool_bytes", fi.Size()).SetStr("output_hash", hash)
	return &JobResult{
		ExitCode:   ExitOK,
		Stdout:     fmt.Sprintf("%s: recorded %d bytes (seed=%d, output hash %s)\n", spec.Name, fi.Size(), seed, hash),
		LogBytes:   fi.Size(),
		OutputHash: hash,
	}
}

// execReplayVerify replays a CHIMLOG2 stream against the instrumented
// program straight from disk (replay.StreamReplayer — bounded memory)
// and verifies the replay: it must run clean, fully drain the order log,
// and, when the log came from a record job, bit-match that job's output
// hash.
func (e *Engine) execReplayVerify(job *Job, spec *JobSpec) *JobResult {
	logPath := job.spool
	expect := ""
	name, source, config, useMHP := spec.Name, spec.Source, spec.config(), spec.MHP
	if spec.LogJob != "" {
		src, ok := e.Job(spec.LogJob)
		if !ok {
			return &JobResult{ExitCode: ExitUsage, Stderr: fmt.Sprintf("replay-verify: unknown log_job %s\n", spec.LogJob)}
		}
		v := src.View()
		if v.Kind != JobRecord || v.State != StateDone || v.Result == nil {
			return &JobResult{ExitCode: ExitUsage, Stderr: fmt.Sprintf("replay-verify: log_job %s is not a finished record job\n", spec.LogJob)}
		}
		logPath = src.spool
		expect = v.Result.OutputHash
		if source == "" {
			name, source, config, useMHP = src.spec.Name, src.spec.Source, src.spec.config(), src.spec.MHP
		}
	}
	sp := job.tracer.Start("instrument")
	ip, err := e.instrumentFor(spec.Tenant, name, source, config, useMHP)
	sp.End()
	if err != nil {
		return &JobResult{ExitCode: ExitFailure, Stderr: fmt.Sprintf("replay-verify: %v\n", err)}
	}
	// The replay span covers the replayed execution including its
	// streaming spool reads; the counting reader feeds the actual
	// bytes pulled from disk into the span and the spool counter.
	rp := job.tracer.Start("replay")
	defer rp.End()
	f, err := os.Open(logPath)
	if err != nil {
		return &JobResult{ExitCode: ExitFailure, Stderr: fmt.Sprintf("replay-verify: %v\n", err)}
	}
	defer f.Close()
	cr := &countReader{r: f}
	// The replay seed deliberately differs from any recording seed:
	// determinism must come from the log alone.
	res, rerr := core.ReplayProgramStream(ip.Prog, ip.Table, cr, core.RunConfig{World: oskit.NewWorld(977), Seed: 977})
	rp.SetAttr("spool_bytes", cr.n)
	e.tel.AddSpoolBytes(0, cr.n)

	matches := rerr == nil
	hash := ""
	if res != nil {
		hash = fmt.Sprintf("%016x", res.Hash64())
	}
	if matches && expect != "" && hash != expect {
		matches = false
		rerr = fmt.Errorf("output hash %s differs from recorded %s", hash, expect)
	}
	r := &JobResult{ReplayMatches: &matches}
	if matches {
		r.ExitCode = ExitOK
		r.Stdout = fmt.Sprintf("%s: replay matches (output hash %s)\n", name, hash)
	} else {
		r.ExitCode = ExitFailure
		r.Stderr = fmt.Sprintf("%s: replay diverged: %v\n", name, rerr)
	}
	return r
}

// execGen pushes a generated scenario through the complete soundness
// pipeline. Stdout/stderr are byte-identical to `racecheck -gen` on the
// same spec (reportGen is the shared printer); the structured verdict
// fields come from the same pipeline Result.
func execGen(tr *obs.Tracer, jobSpec *JobSpec) *JobResult {
	var out, errOut bytes.Buffer
	spec, err := scenario.Parse(jobSpec.Spec)
	if err != nil {
		fmt.Fprintln(&errOut, "racecheck:", err)
		return &JobResult{ExitCode: ExitUsage, Stderr: errOut.String()}
	}
	sp := tr.Start("gen-pipeline").SetStr("spec", spec.String())
	r := scenario.RunPipeline(spec)
	sp.End()
	code := reportGen(r, spec, jobSpec.Verbose, &out, &errOut)

	certified := r.StagePassed("certify")
	replayMatches := r.StagePassed("replay")
	checkersAgree := r.StagePassed("differential") && r.StagePassed("clean")
	races := r.OriginalRaces
	return &JobResult{
		ExitCode:      code,
		Stdout:        out.String(),
		Stderr:        errOut.String(),
		Certified:     &certified,
		ReplayMatches: &replayMatches,
		CheckersAgree: &checkersAgree,
		CheckerRaces:  &races,
		Stages:        r.Stages,
	}
}
