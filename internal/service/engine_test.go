package service

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/pool"
)

func newTestEngine(t *testing.T) *Engine {
	t.Helper()
	return NewEngine(EngineConfig{
		Shards:     4,
		Depth:      64,
		SpoolDir:   t.TempDir(),
		JobTimeout: 90 * time.Second,
	})
}

// await blocks until the job is terminal and returns its view.
func await(t *testing.T, job *Job) JobView {
	t.Helper()
	select {
	case <-job.Done():
	case <-time.After(2 * time.Minute):
		t.Fatalf("job %s did not finish", job.ID())
	}
	return job.View()
}

func submitAndAwait(t *testing.T, e *Engine, spec *JobSpec) JobView {
	t.Helper()
	job, err := e.Submit(spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	return await(t, job)
}

func TestEngineAnalyzeMatchesOffline(t *testing.T) {
	e := newTestEngine(t)
	defer e.Drain(time.Minute)
	req := inlineReq("racy.mc", racySrc, func(r *Request) { r.MHP = true })

	var offOut, offErr bytes.Buffer
	offCode := RunRequest(inlineReq("racy.mc", racySrc, func(r *Request) { r.MHP = true }), nil, &offOut, &offErr)

	v := submitAndAwait(t, e, &JobSpec{Kind: JobAnalyze, Tenant: "acme", Request: req})
	if v.State != StateDone || v.Result == nil {
		t.Fatalf("job state %s, error %q", v.State, v.Error)
	}
	if v.Result.ExitCode != offCode || v.Result.Stdout != offOut.String() || v.Result.Stderr != offErr.String() {
		t.Errorf("service verdict diverged from offline:\nexit %d vs %d\n--- service ---\n%s\n--- offline ---\n%s",
			v.Result.ExitCode, offCode, v.Result.Stdout, offOut.String())
	}
}

func TestEngineRecordThenReplayVerify(t *testing.T) {
	e := newTestEngine(t)
	defer e.Drain(time.Minute)

	rec := submitAndAwait(t, e, &JobSpec{Kind: JobRecord, Tenant: "acme", Name: "clean", Source: cleanSrc, MHP: true, Seed: 7})
	if rec.State != StateDone || rec.Result == nil {
		t.Fatalf("record: state %s, error %q", rec.State, rec.Error)
	}
	if rec.Result.LogBytes <= 0 || rec.Result.OutputHash == "" {
		t.Fatalf("record result incomplete: %+v", rec.Result)
	}
	// The same spec re-recorded produces the same output hash (the
	// deterministic identity a replay must reproduce).
	rec2 := submitAndAwait(t, e, &JobSpec{Kind: JobRecord, Tenant: "acme", Name: "clean", Source: cleanSrc, MHP: true, Seed: 7})
	if rec2.Result == nil || rec2.Result.OutputHash != rec.Result.OutputHash {
		t.Fatalf("re-record hash %v, want %s", rec2.Result, rec.Result.OutputHash)
	}

	// Replay-verify against the record job's spool: the program and
	// config are inherited from the record spec, and the replayed output
	// must bit-match the recorded hash.
	ver := submitAndAwait(t, e, &JobSpec{Kind: JobReplayVerify, Tenant: "acme", LogJob: rec.ID})
	if ver.State != StateDone || ver.Result == nil {
		t.Fatalf("replay-verify: state %s, error %q", ver.State, ver.Error)
	}
	if ver.Result.ReplayMatches == nil || !*ver.Result.ReplayMatches {
		t.Fatalf("replay did not match: %+v", ver.Result)
	}
	if !strings.Contains(ver.Result.Stdout, rec.Result.OutputHash) {
		t.Errorf("verify stdout %q lacks the recorded hash %s", ver.Result.Stdout, rec.Result.OutputHash)
	}

	// A replay-verify naming an unfinished/unknown log job is a usage error.
	bad := submitAndAwait(t, e, &JobSpec{Kind: JobReplayVerify, Tenant: "acme", LogJob: "j999999-cafebabecafe"})
	if bad.Result == nil || bad.Result.ExitCode != ExitUsage {
		t.Errorf("unknown log_job: %+v, want exit %d", bad.Result, ExitUsage)
	}
}

func TestEngineReplayVerifyUpload(t *testing.T) {
	e := newTestEngine(t)
	defer e.Drain(time.Minute)

	rec := submitAndAwait(t, e, &JobSpec{Kind: JobRecord, Tenant: "acme", Name: "clean", Source: cleanSrc, Seed: 3})
	if rec.State != StateDone {
		t.Fatalf("record failed: %q", rec.Error)
	}
	f, err := e.OpenLog(rec.ID)
	if err != nil {
		t.Fatalf("OpenLog: %v", err)
	}
	logBytes, err := io.ReadAll(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}

	// The upload job idles in awaiting-log until the log arrives, then
	// runs. It carries its own copy of the program.
	job, err := e.Submit(&JobSpec{Kind: JobReplayVerify, Tenant: "acme", Name: "clean", Source: cleanSrc, LogUpload: true})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if v := job.View(); v.State != StateAwaitingLog {
		t.Fatalf("state %s, want awaiting-log", v.State)
	}
	n, err := e.AttachLog(job.ID(), bytes.NewReader(logBytes))
	if err != nil || n != int64(len(logBytes)) {
		t.Fatalf("AttachLog: n=%d err=%v, want %d bytes", n, err, len(logBytes))
	}
	v := await(t, job)
	if v.Result == nil || v.Result.ReplayMatches == nil || !*v.Result.ReplayMatches {
		t.Fatalf("uploaded replay did not match: %+v (error %q)", v.Result, v.Error)
	}

	// A second upload to the now-running/finished job is rejected.
	if _, err := e.AttachLog(job.ID(), bytes.NewReader(logBytes)); !errors.Is(err, ErrNotAwaitingLog) {
		t.Errorf("second upload: %v, want ErrNotAwaitingLog", err)
	}
	if _, err := e.AttachLog("j000000-missing00000", bytes.NewReader(nil)); !errors.Is(err, ErrUnknownJob) {
		t.Errorf("unknown job upload: %v, want ErrUnknownJob", err)
	}
}

func TestEngineGenPipeline(t *testing.T) {
	e := newTestEngine(t)
	defer e.Drain(time.Minute)

	var offOut, offErr bytes.Buffer
	offReq := NewRequest()
	offReq.Gen = "counters:7:small"
	offCode := RunRequest(offReq, nil, &offOut, &offErr)

	v := submitAndAwait(t, e, &JobSpec{Kind: JobGenPipeline, Tenant: "acme", Spec: "counters:7:small"})
	if v.State != StateDone || v.Result == nil {
		t.Fatalf("gen job: state %s, error %q", v.State, v.Error)
	}
	r := v.Result
	if r.ExitCode != offCode || r.Stdout != offOut.String() || r.Stderr != offErr.String() {
		t.Errorf("gen verdict diverged from racecheck -gen:\nexit %d vs %d\n--- service ---\n%s\n--- offline ---\n%s",
			r.ExitCode, offCode, r.Stdout, offOut.String())
	}
	for name, p := range map[string]*bool{
		"certified": r.Certified, "replay_matches": r.ReplayMatches, "checkers_agree": r.CheckersAgree,
	} {
		if p == nil || !*p {
			t.Errorf("structured verdict %s = %v, want true", name, p)
		}
	}
	if r.CheckerRaces == nil {
		t.Error("checker_races missing")
	}
	if len(r.Stages) == 0 {
		t.Error("stage trail missing")
	}

	bad := submitAndAwait(t, e, &JobSpec{Kind: JobGenPipeline, Tenant: "acme", Spec: "bogus:1:small"})
	if bad.Result == nil || bad.Result.ExitCode != ExitUsage {
		t.Errorf("bad spec: %+v, want exit %d", bad.Result, ExitUsage)
	}
}

func TestEngineDrainRejectsNewWork(t *testing.T) {
	e := newTestEngine(t)
	if !e.Drain(time.Minute) {
		t.Fatal("drain of idle engine did not complete")
	}
	if !e.Draining() {
		t.Error("Draining() = false after Drain")
	}
	_, err := e.Submit(&JobSpec{Kind: JobGenPipeline, Spec: "counters:7:small"})
	if !errors.Is(err, pool.ErrDraining) {
		t.Errorf("post-drain submit: %v, want pool.ErrDraining", err)
	}
}

// TestMultiTenantSummaryReuse is the multi-tenant isolation contract
// (run under -race in CI): 8 concurrent submitters spread across two
// tenants submit the same program; within each tenant every repeat is a
// full cache hit, and the tenants' key namespaces never collide — each
// pays for exactly one cold analysis and the shared store holds two
// disjoint copies.
func TestMultiTenantSummaryReuse(t *testing.T) {
	e := newTestEngine(t)
	defer e.Drain(time.Minute)
	const submitters = 8
	const perSubmitter = 3
	tenants := []string{"alice", "bob"}

	var wg sync.WaitGroup
	views := make([][]JobView, submitters)
	for i := 0; i < submitters; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			tenant := tenants[i%len(tenants)]
			for j := 0; j < perSubmitter; j++ {
				req := inlineReq("shared.mc", cleanSrc, func(r *Request) { r.MHP = true })
				job, err := e.Submit(&JobSpec{Kind: JobAnalyze, Tenant: tenant, Request: req})
				if err != nil {
					t.Errorf("submitter %d: %v", i, err)
					return
				}
				views[i] = append(views[i], await(t, job))
			}
		}()
	}
	wg.Wait()

	// Every verdict — any tenant, any submitter — is byte-identical to
	// the offline run.
	var offOut, offErr bytes.Buffer
	offCode := RunRequest(inlineReq("shared.mc", cleanSrc, func(r *Request) { r.MHP = true }), nil, &offOut, &offErr)
	for i, vs := range views {
		for _, v := range vs {
			if v.State != StateDone || v.Result == nil {
				t.Fatalf("submitter %d: job %s state %s, error %q", i, v.ID, v.State, v.Error)
			}
			if v.Result.ExitCode != offCode || v.Result.Stdout != offOut.String() || v.Result.Stderr != offErr.String() {
				t.Errorf("submitter %d: verdict diverged from offline", i)
			}
		}
	}

	m := e.Metrics()
	if len(m.Tenants) != 2 {
		t.Fatalf("metrics report %d tenants, want 2", len(m.Tenants))
	}
	jobsPerTenant := int64(submitters / 2 * perSubmitter)
	var totalPuts int64
	for _, tm := range m.Tenants {
		if tm.Jobs != jobsPerTenant {
			t.Errorf("tenant %s: %d jobs, want %d", tm.Tenant, tm.Jobs, jobsPerTenant)
		}
		// Identical submissions share a spec hash, so they serialized on
		// one shard: exactly one cold miss, all repeats full hits.
		if tm.Cache.Misses != 1 || tm.Cache.Hits != jobsPerTenant-1 {
			t.Errorf("tenant %s cache = %+v, want 1 miss / %d hits (full within-tenant reuse)",
				tm.Tenant, tm.Cache, jobsPerTenant-1)
		}
		if tm.CacheHitRatio <= 0 {
			t.Errorf("tenant %s: cache hit ratio %v, want > 0", tm.Tenant, tm.CacheHitRatio)
		}
		if tm.SummaryStore.Puts == 0 {
			t.Errorf("tenant %s: no summary puts — cold analysis bypassed the store", tm.Tenant)
		}
		totalPuts += tm.SummaryStore.Puts
	}
	if m.Tenants[0].SummaryStore.Puts != m.Tenants[1].SummaryStore.Puts {
		t.Errorf("tenants did identical work but put %d vs %d summaries",
			m.Tenants[0].SummaryStore.Puts, m.Tenants[1].SummaryStore.Puts)
	}
	// No cross-tenant key collisions: the shared storage holds each
	// tenant's entries separately, so global residency is the sum of
	// both tenants' puts.
	if got := m.Tenants[0].SummaryStore.Entries; got != totalPuts {
		t.Errorf("shared store holds %d entries, want %d (disjoint per-tenant namespaces)", got, totalPuts)
	}
}

func TestEngineJobTimeout(t *testing.T) {
	e := NewEngine(EngineConfig{Shards: 1, Depth: 4, SpoolDir: t.TempDir(), JobTimeout: 50 * time.Millisecond})
	defer e.Drain(time.Minute)
	// A gen-pipeline run takes well over 50ms; the job must fail at the
	// deadline rather than wedge the shard.
	v := submitAndAwait(t, e, &JobSpec{Kind: JobGenPipeline, Tenant: "t", Spec: "counters:7:small"})
	if v.State != StateFailed || !strings.Contains(v.Error, "timed out") {
		t.Fatalf("state %s, error %q, want a timeout failure", v.State, v.Error)
	}
	// The shard survives and runs the next (fast-failing) job.
	e2 := NewEngine(EngineConfig{Shards: 1, Depth: 4, SpoolDir: t.TempDir(), JobTimeout: time.Minute})
	defer e2.Drain(time.Minute)
	v2 := submitAndAwait(t, e2, &JobSpec{Kind: JobGenPipeline, Tenant: "t", Spec: "bogus:1:small"})
	if v2.State != StateDone {
		t.Fatalf("follow-up job state %s, error %q", v2.State, v2.Error)
	}
}
