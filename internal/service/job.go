package service

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"
	"time"

	"repro/internal/obs"
)

// JobKind names the four kinds of work the engine schedules.
type JobKind string

const (
	// JobAnalyze runs the full racecheck request pipeline (static
	// analysis, refinement, certification, dynamic checking — whatever
	// the embedded Request selects) and captures its verdict text.
	JobAnalyze JobKind = "analyze"
	// JobRecord instruments a submitted program and records one
	// execution, streaming the CHIMLOG2 log to a disk spool as records
	// commit — the job never holds the whole log in memory.
	JobRecord JobKind = "record"
	// JobReplayVerify replays a CHIMLOG2 stream (a record job's spool,
	// or one uploaded over the wire) against the instrumented program
	// with bounded memory and reports whether the replay bit-matches.
	JobReplayVerify JobKind = "replay-verify"
	// JobGenPipeline generates a scenario program from a spec and pushes
	// it through the complete soundness pipeline (analyze fresh ==
	// incremental, instrument, certify clean, record, replay
	// bit-identical, epoch == vector verdicts).
	JobGenPipeline JobKind = "gen-pipeline"
)

// JobState is the lifecycle: queued → running → done|failed, with
// awaiting-log before queued for replay-verify jobs expecting an upload.
type JobState string

const (
	StateQueued      JobState = "queued"
	StateAwaitingLog JobState = "awaiting-log"
	StateRunning     JobState = "running"
	StateDone        JobState = "done"
	StateFailed      JobState = "failed"
)

// JobSpec is the serialized description of one job — everything the
// engine needs to execute it, and nothing else. Its Hash is the job's
// deterministic identity.
type JobSpec struct {
	Kind   JobKind `json:"kind"`
	Tenant string  `json:"tenant,omitempty"`

	// TraceID names this submission in spans, logs, and /debug/traces;
	// the engine mints one when both this and the embedded request's
	// trace ID are empty. WantTrace asks the engine to attach the
	// job's span tree to the result (JobResult.Trace) so the client
	// can render it (racecheck -server -trace). Neither participates
	// in Hash: trace identity is per-request, work identity per-spec,
	// and hashing them would break shard affinity and cache-warm dedup
	// for identical work.
	TraceID   string `json:"trace_id,omitempty"`
	WantTrace bool   `json:"want_trace,omitempty"`

	// Request drives analyze jobs: the full racecheck flag vocabulary.
	Request *Request `json:"request,omitempty"`

	// Record / replay-verify jobs carry the program inline.
	Name   string `json:"name,omitempty"`
	Source string `json:"source,omitempty"`
	Config string `json:"config,omitempty"` // instrumentation config (default "all")
	MHP    bool   `json:"mhp,omitempty"`    // refine the report before instrumenting
	Seed   uint64 `json:"seed,omitempty"`   // recording schedule seed

	// Replay-verify log source: exactly one of LogJob (a finished record
	// job whose spool — and expected output hash — this job verifies
	// against) or LogUpload (the log arrives via PUT /v1/jobs/{id}/log;
	// the job stays in awaiting-log until it does).
	LogJob    string `json:"log_job,omitempty"`
	LogUpload bool   `json:"log_upload,omitempty"`

	// Spec drives gen-pipeline jobs (family:seed:size); Verbose adds the
	// generated source to stdout, exactly like `racecheck -gen -v`.
	Spec    string `json:"spec,omitempty"`
	Verbose bool   `json:"verbose,omitempty"`
}

// config returns the instrumentation config name with the default applied.
func (s *JobSpec) config() string {
	if s.Config == "" {
		return "all"
	}
	return s.Config
}

// Validate reports why the spec cannot be executed.
func (s *JobSpec) Validate() error {
	switch s.Kind {
	case JobAnalyze:
		if s.Request == nil {
			return fmt.Errorf("analyze job needs a request")
		}
		if err := s.Request.ValidateRemote(); err != nil {
			return fmt.Errorf("analyze job: %v", err)
		}
		if len(s.Request.Args) == 1 && !s.Request.HasSource {
			return fmt.Errorf("analyze job: positional argument %q without inline source", s.Request.Args[0])
		}
	case JobRecord:
		if s.Source == "" {
			return fmt.Errorf("record job needs inline source")
		}
		if _, ok := optionsFor(s.config()); !ok {
			return fmt.Errorf("record job: unknown config %q", s.config())
		}
	case JobReplayVerify:
		switch {
		case s.LogJob == "" && !s.LogUpload:
			return fmt.Errorf("replay-verify job needs log_job or log_upload")
		case s.LogJob != "" && s.LogUpload:
			return fmt.Errorf("replay-verify job takes log_job or log_upload, not both")
		case s.LogUpload && s.Source == "":
			return fmt.Errorf("replay-verify job with log_upload needs inline source")
		}
		if s.Source != "" {
			if _, ok := optionsFor(s.config()); !ok {
				return fmt.Errorf("replay-verify job: unknown config %q", s.config())
			}
		}
	case JobGenPipeline:
		if s.Spec == "" {
			return fmt.Errorf("gen-pipeline job needs a scenario spec")
		}
	default:
		return fmt.Errorf("unknown job kind %q", s.Kind)
	}
	return nil
}

// Hash is the deterministic identity of the work this spec describes:
// SHA-256 over a canonical field-tagged encoding. The pipeline is
// deterministic in every hashed input, so equal hashes mean
// byte-identical verdicts — which is why the engine routes jobs to
// shards by this hash: identical re-submissions serialize on one shard
// and hit the tenant's caches warm.
func (s *JobSpec) Hash() string {
	h := sha256.New()
	field := func(tag string, v any) {
		fmt.Fprintf(h, "%s=%v\x00", tag, v)
	}
	field("kind", s.Kind)
	field("tenant", s.Tenant)
	if s.Request != nil {
		field("request", s.Request.SpecHash())
	}
	field("name", s.Name)
	field("source", s.Source)
	field("config", s.Config)
	field("mhp", s.MHP)
	field("seed", s.Seed)
	field("log_job", s.LogJob)
	field("log_upload", s.LogUpload)
	field("spec", s.Spec)
	field("verbose", s.Verbose)
	return hex.EncodeToString(h.Sum(nil))
}

// JobResult is a finished job's output. ExitCode/Stdout/Stderr carry the
// racecheck-equivalent verdict; the typed fields carry the structured
// verdicts scripts assert on (the CI smoke gate jq-checks certified /
// replay_matches / checkers_agree).
type JobResult struct {
	ExitCode int    `json:"exit_code"`
	Stdout   string `json:"stdout,omitempty"`
	Stderr   string `json:"stderr,omitempty"`

	// Record jobs: spool size and the 64-bit output hash of the recorded
	// execution (the value a verifying replay must reproduce).
	LogBytes   int64  `json:"log_bytes,omitempty"`
	OutputHash string `json:"output_hash,omitempty"`

	// Replay-verify and gen-pipeline verdicts.
	ReplayMatches *bool `json:"replay_matches,omitempty"`

	// Gen-pipeline verdicts.
	Certified     *bool    `json:"certified,omitempty"`
	CheckersAgree *bool    `json:"checkers_agree,omitempty"`
	CheckerRaces  *int     `json:"checker_races,omitempty"`
	Stages        []string `json:"stages,omitempty"`

	// Trace is the job's span tree, attached when the spec set
	// WantTrace: the root "request" span with queue wait, spool I/O,
	// pipeline stages, and verdict encode as descendants.
	Trace *obs.SpanNode `json:"trace,omitempty"`
}

// Job is one scheduled unit of work. All fields are guarded by mu;
// readers take View snapshots. done closes exactly once, when the job
// reaches a terminal state.
type Job struct {
	mu       sync.Mutex
	id       string
	spec     *JobSpec
	hash     string
	state    JobState
	errMsg   string
	result   *JobResult
	created  time.Time
	started  time.Time
	finished time.Time

	done  chan struct{}
	spool string // CHIMLOG2 spool path (record output / replay input)

	// Per-request observability, owned by the engine. tracer records
	// the job's span tree; rootSpan is the open "request" span and
	// waitSpan the currently open wait-phase span ("awaiting-log" or
	// "queue-wait"). queueWaitNS/runNS are filled as the spans close.
	traceID     string
	tracer      *obs.Tracer
	rootSpan    *obs.Span
	waitSpan    *obs.Span
	queueWaitNS int64
	runNS       int64
}

// ID returns the job's engine-assigned identifier.
func (j *Job) ID() string { return j.id }

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// setRunning transitions queued → running.
func (j *Job) setRunning() {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state == StateQueued {
		j.state = StateRunning
		j.started = time.Now()
	}
}

// complete moves the job to done (errMsg == "") or failed, exactly once;
// late completions (e.g. a timed-out executor finally returning) are
// dropped. It reports whether this call was the one that completed it.
func (j *Job) complete(res *JobResult, errMsg string) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state == StateDone || j.state == StateFailed {
		return false
	}
	j.result = res
	j.errMsg = errMsg
	if errMsg != "" {
		j.state = StateFailed
	} else {
		j.state = StateDone
	}
	j.finished = time.Now()
	close(j.done)
	return true
}

// JobView is the wire representation of a job's current state.
// QueueWaitNS and RunNS come from the job's span tree (queue-wait and
// run spans), so they are populated once the corresponding phase ends.
type JobView struct {
	ID          string     `json:"id"`
	Kind        JobKind    `json:"kind"`
	Tenant      string     `json:"tenant,omitempty"`
	SpecHash    string     `json:"spec_hash"`
	TraceID     string     `json:"trace_id,omitempty"`
	State       JobState   `json:"state"`
	Error       string     `json:"error,omitempty"`
	Result      *JobResult `json:"result,omitempty"`
	Created     time.Time  `json:"created"`
	Started     *time.Time `json:"started,omitempty"`
	Finished    *time.Time `json:"finished,omitempty"`
	QueueWaitNS int64      `json:"queue_wait_ns,omitempty"`
	RunNS       int64      `json:"run_ns,omitempty"`
}

// Terminal reports whether the job has finished (done or failed).
func (v *JobView) Terminal() bool {
	return v.State == StateDone || v.State == StateFailed
}

// View snapshots the job for serialization.
func (j *Job) View() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		ID:          j.id,
		Kind:        j.spec.Kind,
		Tenant:      j.spec.Tenant,
		SpecHash:    j.hash,
		TraceID:     j.traceID,
		State:       j.state,
		Error:       j.errMsg,
		Result:      j.result,
		Created:     j.created,
		QueueWaitNS: j.queueWaitNS,
		RunNS:       j.runNS,
	}
	if !j.started.IsZero() {
		t := j.started
		v.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		v.Finished = &t
	}
	return v
}
