package service

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"os"

	"repro/internal/obs"
)

// Request is racecheck's flag vocabulary as a value: everything one
// invocation needs to produce its verdict. The CLI builds one from its
// parsed flags and runs it in process; the client mode ships it to a
// chimerad server, which executes it through the identical RunRequest
// path — that shared path is the byte-identity guarantee.
//
// Paths in CertOut/Instrumented/TracePath/MetricsPath/BatchDir refer to
// the local filesystem and are rejected in remote requests (see
// ValidateRemote).
type Request struct {
	Verbose      bool   `json:"verbose,omitempty"`
	ShowCFG      bool   `json:"cfg,omitempty"`
	MHP          bool   `json:"mhp,omitempty"`
	Precision    bool   `json:"precision,omitempty"`
	Pairs        bool   `json:"pairs,omitempty"`
	Parallel     int    `json:"parallel,omitempty"`
	Certify      bool   `json:"certify,omitempty"`
	Config       string `json:"config,omitempty"`
	CertOut      string `json:"certout,omitempty"`
	Instrumented string `json:"instrumented,omitempty"`
	Bench        string `json:"bench,omitempty"`
	Dynamic      bool   `json:"dynamic,omitempty"`
	Checker      string `json:"checker,omitempty"`
	Seed         uint64 `json:"seed,omitempty"`
	TracePath    string `json:"trace,omitempty"`
	MetricsPath  string `json:"metrics,omitempty"`
	Incremental  bool   `json:"incremental,omitempty"`
	BatchDir     string `json:"batch,omitempty"`
	SummaryStats bool   `json:"summary_stats,omitempty"`
	Gen          string `json:"gen,omitempty"`

	// TraceID is the request's trace identity (racecheck -trace-id, or
	// any client-chosen string). It names this submission in the
	// server's span tree, structured logs, and /debug/traces ring; the
	// server mints one when it is empty. It is deliberately EXCLUDED
	// from SpecHash: trace identity is per-request, work identity is
	// per-spec, and folding it in would break hash-routed shard
	// affinity and warm-cache dedup for identical work.
	TraceID string `json:"trace_id,omitempty"`

	// Args are the positional arguments (at most one: the source path).
	Args []string `json:"args,omitempty"`

	// Source carries the program text inline when HasSource is set; the
	// client mode reads the file so the server never touches client
	// paths. Args[0] remains the display path, keeping output identical
	// to the offline run on the same command line.
	Source    string `json:"source,omitempty"`
	HasSource bool   `json:"has_source,omitempty"`

	// Usage, when non-nil, prints the CLI usage text on argument errors
	// (the CLI wires its FlagSet's Usage here). Not serialized.
	Usage func() `json:"-"`

	// Tracer, when non-nil, records pipeline-stage spans (parse,
	// typecheck, analyze, refinement, certify, …) for this run. The job
	// engine wires the job's per-request tracer here; the offline CLI
	// leaves it nil, which is the zero-cost disabled tracer. Not
	// serialized and not part of SpecHash.
	Tracer *obs.Tracer `json:"-"`
}

// NewRequest returns a Request with racecheck's flag defaults.
func NewRequest() *Request {
	return &Request{Parallel: 1, Config: "all", Checker: "epoch", Seed: 1}
}

// usage prints the CLI usage when available, or a one-line reminder.
func (req *Request) usage(errOut io.Writer) {
	if req.Usage != nil {
		req.Usage()
		return
	}
	fmt.Fprintln(errOut, "usage: racecheck [flags] [prog.mc]")
}

// readSource returns the program text: the inline source when the
// request carries one, the local file at Args[i] otherwise.
func (req *Request) readSource(i int) ([]byte, error) {
	if req.HasSource {
		return []byte(req.Source), nil
	}
	return os.ReadFile(req.Args[i])
}

// ValidateRemote reports why a request cannot be executed on a remote
// server: modes that read or write the local filesystem beyond the one
// source file (which the client inlines) stay CLI-only.
func (req *Request) ValidateRemote() error {
	switch {
	case req.BatchDir != "":
		return fmt.Errorf("-batch reads a local corpus directory")
	case req.CertOut != "":
		return fmt.Errorf("-certout writes local certificate files")
	case req.Instrumented != "":
		return fmt.Errorf("-instrumented reads a local pre-instrumented file")
	case req.TracePath != "":
		// The -server client never ships this: it strips -trace and
		// renders the job's returned span tree locally (see RemoteRun).
		return fmt.Errorf("-trace writes a local artifact file")
	case req.MetricsPath != "":
		return fmt.Errorf("-metrics writes a local artifact file")
	case req.ShowCFG:
		return fmt.Errorf("-cfg is a local debugging dump")
	}
	return nil
}

// SpecHash is the deterministic identity of the work a request
// describes: SHA-256 over a canonical field-tagged encoding. Two
// requests with equal hashes produce byte-identical verdicts (the
// pipeline is deterministic in all of these inputs), which is what lets
// the engine route equal submissions to one shard and reuse caches.
func (req *Request) SpecHash() string {
	h := sha256.New()
	field := func(tag string, v any) {
		fmt.Fprintf(h, "%s=%v\x00", tag, v)
	}
	field("verbose", req.Verbose)
	field("cfg", req.ShowCFG)
	field("mhp", req.MHP)
	field("precision", req.Precision)
	field("pairs", req.Pairs)
	field("parallel", req.Parallel)
	field("certify", req.Certify)
	field("config", req.Config)
	field("certout", req.CertOut)
	field("instrumented", req.Instrumented)
	field("bench", req.Bench)
	field("dynamic", req.Dynamic)
	field("checker", req.Checker)
	field("seed", req.Seed)
	field("trace", req.TracePath)
	field("metrics", req.MetricsPath)
	field("incremental", req.Incremental)
	field("batch", req.BatchDir)
	field("summary_stats", req.SummaryStats)
	field("gen", req.Gen)
	for _, a := range req.Args {
		field("arg", a)
	}
	field("has_source", req.HasSource)
	field("source", req.Source)
	return hex.EncodeToString(h.Sum(nil))
}
