package service

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/bench/harness"
	"repro/internal/callgraph"
	"repro/internal/certify"
	"repro/internal/cfg"
	"repro/internal/core"
	"repro/internal/escape"
	"repro/internal/instrument"
	"repro/internal/mhp"
	"repro/internal/minic/ast"
	"repro/internal/minic/parser"
	"repro/internal/minic/types"
	"repro/internal/oskit"
	"repro/internal/pointsto"
	"repro/internal/relay"
	"repro/internal/scenario"
	"repro/internal/summary"
	"repro/internal/trace"
)

// Env is the per-tenant execution environment a long-running engine
// threads through RunRequest: a whole-program artifact cache and the
// tenant's summary-store view. A nil Env (the one-shot CLI) makes
// RunRequest behave exactly like the historical racecheck run — every
// invocation computes from scratch.
//
// The cache is a pure accelerator: artifacts it returns are proven
// byte-identical to fresh computation (the determinism test layer), and
// any cache-path failure falls back to the offline path, so an Env can
// change wall time and -summary-stats counters but never a verdict byte.
type Env struct {
	Cache *core.Cache
	Store *summary.Store
}

// loadProgram loads an analyzed program through the tenant cache when
// one is available, falling back to the offline whole-program load.
// Both routes produce identical artifacts and identical error text
// (they share core's Load* wrapping).
func (env *Env) loadProgram(name, src string, workers int) (*core.Program, error) {
	if env != nil && env.Cache != nil {
		return env.Cache.Load(name, src, workers)
	}
	return core.LoadParallel(name, src, workers)
}

// optionsFor maps a configuration name (without the "+mhp" suffix) to
// instrumenter options; it mirrors the bench harness's configuration
// vocabulary.
func optionsFor(name string) (instrument.Options, bool) {
	switch name {
	case "instr":
		return instrument.NaiveOptions(), true
	case "instr+func":
		return instrument.Options{FuncLocks: true}, true
	case "instr+loop":
		return instrument.Options{LoopLocks: true, LoopBodyThreshold: 14}, true
	case "all":
		return instrument.AllOptions(), true
	}
	return instrument.Options{}, false
}

// RunRequest executes one racecheck request and returns its process
// exit code. It is the entire verdict-producing pipeline behind both the
// offline CLI (env == nil) and the chimerad job engine (env carries the
// tenant's caches): one code path, so a verdict's bytes cannot depend on
// which front end asked for it.
func RunRequest(req *Request, env *Env, out, errOut io.Writer) int {
	if req.Gen != "" {
		if req.Dynamic || req.Certify || req.BatchDir != "" || req.Bench != "" || len(req.Args) != 0 {
			fmt.Fprintln(errOut, "racecheck: -gen takes a spec and combines only with -v")
			return ExitUsage
		}
		return runGen(req.Gen, req.Verbose, out, errOut)
	}

	if req.BatchDir != "" {
		if req.Dynamic || req.Certify || req.Bench != "" || len(req.Args) != 0 {
			fmt.Fprintln(errOut, "racecheck: -batch takes a directory and combines only with -mhp, -parallel, and -summary-stats")
			return ExitUsage
		}
		return runBatch(req.BatchDir, req.Parallel, req.MHP, req.SummaryStats, out, errOut)
	}
	if req.SummaryStats && !req.Incremental {
		fmt.Fprintln(errOut, "racecheck: -summary-stats requires -incremental or -batch")
		return ExitUsage
	}

	if req.TracePath != "" || req.MetricsPath != "" {
		if !req.Dynamic {
			fmt.Fprintln(errOut, "racecheck: -trace/-metrics require -dynamic")
			return ExitUsage
		}
		return runObserved(req, out, errOut)
	}

	if req.Dynamic {
		if req.Bench != "" {
			if len(req.Args) != 0 {
				req.usage(errOut)
				return ExitUsage
			}
			return runDynamicBench(env, req.Bench, req.Checker, req.Seed, out, errOut)
		}
		if len(req.Args) != 1 {
			req.usage(errOut)
			return ExitUsage
		}
		src, err := req.readSource(0)
		if err != nil {
			fmt.Fprintln(errOut, "racecheck:", err)
			return ExitFailure
		}
		name := strings.TrimSuffix(filepath.Base(req.Args[0]), filepath.Ext(req.Args[0]))
		sp := req.Tracer.Start("analyze")
		prog, err := env.loadProgram(name, string(src), 1)
		sp.End()
		if err != nil {
			fmt.Fprintln(errOut, "racecheck:", err)
			return ExitFailure
		}
		sp = req.Tracer.Start("dynamic-check")
		defer sp.End()
		return runDynamic(name, prog, oskit.NewWorld(req.Seed), req.Seed, req.Checker, out, errOut)
	}

	opts, okConfig := optionsFor(req.Config)
	if req.Certify && !okConfig {
		fmt.Fprintf(errOut, "racecheck: unknown -config %q\n", req.Config)
		return ExitUsage
	}
	label := req.Config
	if req.MHP {
		label += "+mhp"
	}
	if req.Precision {
		label += "+precision"
	}

	if req.Bench != "" {
		if !req.Certify || len(req.Args) != 0 || req.Instrumented != "" {
			req.usage(errOut)
			return ExitUsage
		}
		return runBench(env, req.Bench, label, opts, req.MHP, req.Precision, req.CertOut, out, errOut)
	}

	if len(req.Args) != 1 {
		req.usage(errOut)
		return ExitUsage
	}
	src, err := req.readSource(0)
	if err != nil {
		fmt.Fprintln(errOut, "racecheck:", err)
		return ExitFailure
	}
	sp := req.Tracer.Start("parse")
	file, err := parser.Parse(req.Args[0], string(src))
	sp.End()
	if err != nil {
		fmt.Fprintln(errOut, "racecheck:", err)
		return ExitFailure
	}
	sp = req.Tracer.Start("typecheck")
	info, err := types.Check(file)
	sp.End()
	if err != nil {
		fmt.Fprintln(errOut, "racecheck:", err)
		return ExitFailure
	}

	// The analysis artifact. With a tenant Env the shared cache supplies
	// it (recomputing at most once per distinct source); the one-shot
	// paths below stay exactly as the CLI always ran them. prog stays nil
	// on any cache-path failure, falling through to the offline walk —
	// the cache can accelerate a verdict but never alter it.
	var prog *core.Program
	sp = req.Tracer.Start("analyze")
	if env != nil && env.Cache != nil {
		if p, cerr := env.Cache.Load(req.Args[0], string(src), req.Parallel); cerr == nil {
			prog = p
		}
	}
	var rep *relay.Report
	var incStats *relay.IncrementalStats
	var store *summary.Store
	switch {
	case prog != nil:
		rep = prog.Races
		incStats = prog.Incremental
		if env != nil {
			store = env.Store
		}
	case req.Incremental:
		store = summary.NewStore()
		pta := pointsto.Analyze(info)
		cg := callgraph.Build(info, pta)
		rep, incStats = relay.AnalyzeIncremental(info, pta, cg, req.Parallel, store)
	default:
		rep = relay.AnalyzeProgramParallel(info, req.Parallel)
	}
	sp.SetAttr("pairs", int64(len(rep.Pairs))).End()
	if req.Pairs {
		sp = req.Tracer.Start("report")
		printPairProvenance(req.Args[0], rep, out)
		sp.End()
		return ExitOK
	}
	if req.MHP {
		sp = req.Tracer.Start("mhp-refine")
		var refined *relay.Report
		if prog != nil {
			refined = prog.RefinedRaces()
		} else {
			refined = mhp.Refine(rep)
		}
		sp.SetAttr("kept", int64(len(refined.Pairs))).End()
		fmt.Fprintf(out, "%s: %d potential race pairs, MHP kept %d, pruned %d\n",
			req.Args[0], len(rep.Pairs), len(refined.Pairs), len(refined.Pruned))
		pruned := append([]relay.PrunedPair(nil), refined.Pruned...)
		sort.SliceStable(pruned, func(i, j int) bool {
			return pairLess(pruned[i].Pair, pruned[j].Pair)
		})
		for _, pp := range pruned {
			fmt.Fprintf(out, "  pruned: %-13s %s\n", pp.Reason, pairString(pp.Pair))
		}
		rep = refined
	}
	if req.Precision {
		sp = req.Tracer.Start("precision-refine")
		prior := len(rep.Pruned)
		var refined *relay.Report
		switch {
		case prog != nil && req.MHP:
			refined = prog.PrecisionRaces()
		case prog != nil:
			refined = prog.PrecisionRacesBase()
		default:
			refined = escape.Refine(rep)
		}
		sp.SetAttr("kept", int64(len(refined.Pairs))).End()
		fmt.Fprintf(out, "%s: precision kept %d, discharged %d\n",
			req.Args[0], len(refined.Pairs), len(refined.Pruned)-prior)
		// RefinePrecision carries prior prunes first, so the tail is ours.
		pruned := append([]relay.PrunedPair(nil), refined.Pruned[prior:]...)
		sort.SliceStable(pruned, func(i, j int) bool {
			return pairLess(pruned[i].Pair, pruned[j].Pair)
		})
		for _, pp := range pruned {
			fmt.Fprintf(out, "  discharged: %-9s %s\n", pp.Reason, pairString(pp.Pair))
		}
		rep = refined
	}

	sp = req.Tracer.Start("report")
	fmt.Fprintf(out, "%s: %d potential race pairs, %d racy nodes, %d racy functions\n",
		req.Args[0], len(rep.Pairs), len(rep.RacyNodes), len(rep.RacyFuncs))

	pairsByFn := make(map[string]int)
	for _, p := range rep.Pairs {
		fp := p.FnPair()
		pairsByFn[fp[0]+" <-> "+fp[1]]++
	}
	var keys []string
	for k := range pairsByFn {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Fprintln(out, "racy function pairs:")
	for _, k := range keys {
		fmt.Fprintf(out, "  %-40s %d race pair(s)\n", k, pairsByFn[k])
	}

	if req.Verbose {
		pairs := append([]*relay.RacePair(nil), rep.Pairs...)
		sort.SliceStable(pairs, func(i, j int) bool { return pairLess(pairs[i], pairs[j]) })
		fmt.Fprintln(out, "race pairs:")
		for _, p := range pairs {
			fmt.Fprintf(out, "  %s\n", pairString(p))
		}
	}

	if req.ShowCFG {
		var names []string
		for fn := range rep.RacyFuncs {
			names = append(names, fn.Name)
		}
		sort.Strings(names)
		for _, name := range names {
			fn := info.Funcs[name]
			g := cfg.Build(fn.Decl)
			fmt.Fprint(out, g.String())
			loops := g.NaturalLoops()
			fmt.Fprintf(out, "  %d natural loop(s)\n", len(loops))
		}
	}

	if req.SummaryStats && incStats != nil {
		fmt.Fprintf(out, "incremental: %d function(s), %d reused, %d recomputed, %d dirty SCC(s), %d unkeyable\n",
			incStats.TotalFuncs, incStats.ReusedFuncs, incStats.RecomputedFuncs,
			incStats.DirtySCCs, len(incStats.Unkeyable))
		printSummaryStats(nil, store, out)
	}
	sp.End() // report

	if !req.Certify {
		return ExitOK
	}

	// Certification: validate the instrumented output (either freshly
	// produced here, or a pre-instrumented file given explicitly)
	// against the report computed above.
	name := strings.TrimSuffix(filepath.Base(req.Args[0]), filepath.Ext(req.Args[0]))
	var instSrc string
	if req.Instrumented != "" {
		b, err := os.ReadFile(req.Instrumented)
		if err != nil {
			fmt.Fprintln(errOut, "racecheck:", err)
			return ExitFailure
		}
		instSrc = string(b)
	} else {
		sp = req.Tracer.Start("instrument")
		res, err := instrument.Instrument(rep, nil, opts)
		sp.End()
		if err != nil {
			fmt.Fprintln(errOut, "racecheck: instrument:", err)
			return ExitFailure
		}
		instSrc = res.Source
	}
	sp = req.Tracer.Start("certify")
	cert, err := certify.Certify(rep, instSrc, name, label)
	sp.End()
	if err != nil {
		fmt.Fprintln(errOut, "racecheck: certify:", err)
		return ExitFailure
	}
	return reportCert(cert, req.CertOut, out, errOut)
}

// runBatch analyzes every *.mc file under dir (sorted by name) through
// one incremental cache sharing a single summary store, so functions
// repeated across the corpus — identical files, shared library code,
// copies with local edits — are summarized once and reused. Per file it
// prints the race-pair count and how much of the RELAY walk was reused.
func runBatch(dir string, workers int, useMHP, showStats bool, out, errOut io.Writer) int {
	// An unusable corpus directory is its own failure class (ExitCorpus),
	// distinct from per-file analysis failures (ExitFailure) and usage
	// errors (ExitUsage), so scripts can tell "the corpus is missing"
	// from "the corpus has a broken file".
	info, err := os.Stat(dir)
	switch {
	case err != nil:
		fmt.Fprintf(errOut, "racecheck: -batch directory %s does not exist: %v\n", dir, err)
		return ExitCorpus
	case !info.IsDir():
		fmt.Fprintf(errOut, "racecheck: -batch target %s is not a directory\n", dir)
		return ExitCorpus
	}
	paths, err := filepath.Glob(filepath.Join(dir, "*.mc"))
	if err != nil {
		fmt.Fprintln(errOut, "racecheck:", err)
		return ExitUsage
	}
	if len(paths) == 0 {
		fmt.Fprintf(errOut, "racecheck: -batch directory %s contains no *.mc files\n", dir)
		return ExitCorpus
	}
	sort.Strings(paths)

	store := summary.NewStore()
	cache := core.NewIncrementalCache(store)
	status := ExitOK
	for _, path := range paths {
		src, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(errOut, "racecheck:", err)
			return ExitFailure
		}
		name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
		prog, err := cache.Load(name, string(src), workers)
		if err != nil {
			fmt.Fprintf(errOut, "racecheck: %s: %v\n", path, err)
			status = ExitFailure
			continue
		}
		rep := prog.Races
		if useMHP {
			rep = prog.RefinedRaces()
		}
		line := fmt.Sprintf("%s: %d race pair(s)", path, len(rep.Pairs))
		if st := prog.Incremental; st != nil {
			line += fmt.Sprintf(" [summaries: %d/%d reused]", st.ReusedFuncs, st.TotalFuncs)
		}
		fmt.Fprintln(out, line)
	}
	if showStats {
		printSummaryStats(cache, store, out)
	}
	return status
}

// printSummaryStats prints the whole-program cache outcomes (when a
// cache was involved) and the summary store's counters.
func printSummaryStats(cache *core.Cache, store *summary.Store, out io.Writer) {
	if cache != nil {
		hits, partial, misses := cache.Stats()
		fmt.Fprintf(out, "cache: %d whole-program hit(s), %d partial hit(s), %d miss(es)\n",
			hits, partial, misses)
	}
	st := store.Stats()
	fmt.Fprintf(out, "summary store: %d hit(s), %d miss(es), %d put(s), %d eviction(s), %d entries\n",
		st.Hits, st.Misses, st.Puts, st.Evictions, st.Entries)
	fmt.Fprintf(out, "mhp facts: %d hit(s), %d miss(es)\n", st.MHPHits, st.MHPMisses)
}

// runObserved runs the fully observed pipeline (analyze → … → record →
// replay → dynamic check) for one benchmark or source file and writes the
// Perfetto trace and/or the metrics report. Output files are created
// before any work runs, and an unwritable path is its own failure class
// (ExitArtifact) so scripts can tell "could not write the artifacts" from
// "the pipeline failed".
func runObserved(req *Request, out, errOut io.Writer) int {
	checker, seed, config := req.Checker, req.Seed, req.Config
	if checker != "epoch" && checker != "vector" {
		fmt.Fprintf(errOut, "racecheck: -trace/-metrics support -checker epoch or vector, not %q\n", checker)
		return ExitUsage
	}
	if _, ok := optionsFor(config); !ok {
		fmt.Fprintf(errOut, "racecheck: unknown -config %q\n", config)
		return ExitUsage
	}
	label := config
	if req.MHP {
		label += "+mhp"
	}

	var target harness.ObserveTarget
	switch {
	case req.Bench == "all":
		fmt.Fprintln(errOut, "racecheck: -trace/-metrics observe a single benchmark, not -bench all")
		return ExitUsage
	case req.Bench != "":
		if len(req.Args) != 0 {
			req.usage(errOut)
			return ExitUsage
		}
		b := bench.ByName(req.Bench)
		if b == nil {
			fmt.Fprintf(errOut, "racecheck: unknown benchmark %q\n", req.Bench)
			return ExitUsage
		}
		target = harness.TargetFor(b)
	default:
		if len(req.Args) != 1 {
			req.usage(errOut)
			return ExitUsage
		}
		src, err := req.readSource(0)
		if err != nil {
			fmt.Fprintln(errOut, "racecheck:", err)
			return ExitFailure
		}
		name := strings.TrimSuffix(filepath.Base(req.Args[0]), filepath.Ext(req.Args[0]))
		target = harness.ObserveTarget{
			Name:         name,
			Source:       string(src),
			ProfileWorld: func(run int) *oskit.World { return oskit.NewWorld(seed + uint64(run)) },
			ProfileRuns:  5,
			EvalWorld:    func(int) *oskit.World { return oskit.NewWorld(seed) },
		}
	}

	// Open every requested artifact up front: a path we cannot write is
	// reported before minutes of pipeline work, with a distinct exit code.
	outputs := make(map[string]*os.File)
	for _, path := range []string{req.TracePath, req.MetricsPath} {
		if path == "" {
			continue
		}
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintf(errOut, "racecheck: cannot write output artifact: %v\n", err)
			return ExitArtifact
		}
		defer f.Close()
		outputs[path] = f
	}

	obsn, err := harness.Observe(target, harness.ObserveOptions{
		Config:   label,
		Parallel: req.Parallel,
		Seed:     seed,
		Checker:  checker,
	})
	if err != nil {
		fmt.Fprintf(errOut, "racecheck: %s: %v\n", target.Name, err)
		return ExitFailure
	}

	if req.TracePath != "" {
		data, err := obsn.Tracer.Perfetto()
		if err == nil {
			_, err = outputs[req.TracePath].Write(data)
		}
		if err != nil {
			fmt.Fprintf(errOut, "racecheck: write %s: %v\n", req.TracePath, err)
			return ExitArtifact
		}
	}
	if req.MetricsPath != "" {
		data, err := obsn.Report.Marshal()
		if err == nil {
			_, err = outputs[req.MetricsPath].Write(data)
		}
		if err != nil {
			fmt.Fprintf(errOut, "racecheck: write %s: %v\n", req.MetricsPath, err)
			return ExitArtifact
		}
	}

	rpt := obsn.Report
	fmt.Fprintf(out, "%s [%s]: %d stage span(s), %d weak-lock site(s), %d dynamic race(s)\n",
		rpt.Program, rpt.Config, len(rpt.Stages), len(rpt.WeakLocks.Sites), rpt.Checker.Races)
	fmt.Fprintf(out, "  weak-lock acquires %d (order-log acquire entries %d), releases %d, forced %d, timeouts %d\n",
		rpt.WeakLocks.Acquires, rpt.WeakLocks.AcquireOrderEntries,
		rpt.WeakLocks.Releases, rpt.WeakLocks.Forced, rpt.WeakLocks.Timeouts)
	fmt.Fprintf(out, "  log %d bytes (%d input / %d order records), events %d in %d batches\n",
		rpt.Log.TotalBytes, rpt.Log.InputRecords, rpt.Log.OrderRecords,
		rpt.Events.Emitted, rpt.Events.Batches)
	if !obsn.ReplayMatches {
		fmt.Fprintf(errOut, "racecheck: %s: replay did not match the recording\n", target.Name)
		return ExitFailure
	}
	if rpt.WeakLocks.Acquires != rpt.WeakLocks.AcquireOrderEntries {
		fmt.Fprintf(errOut, "racecheck: %s: per-site acquire total %d disagrees with order log %d\n",
			target.Name, rpt.WeakLocks.Acquires, rpt.WeakLocks.AcquireOrderEntries)
		return ExitFailure
	}
	if req.TracePath != "" {
		fmt.Fprintf(out, "  trace written to %s\n", req.TracePath)
	}
	if req.MetricsPath != "" {
		fmt.Fprintf(out, "  metrics written to %s\n", req.MetricsPath)
	}
	return ExitOK
}

// runDynamic executes one program with the selected dynamic race
// checker(s) attached as batched event sinks and prints the verdict.
// With -checker both the epoch checker and the full-vector oracle observe
// one event stream of a single execution and must agree.
func runDynamic(name string, prog *core.Program, world *oskit.World, seed uint64, checker string, out, errOut io.Writer) int {
	var chks []trace.RaceChecker
	switch checker {
	case "epoch":
		chks = []trace.RaceChecker{trace.NewChecker(0)}
	case "vector":
		chks = []trace.RaceChecker{trace.NewVectorChecker(0)}
	case "both":
		chks = []trace.RaceChecker{trace.NewChecker(0), trace.NewVectorChecker(0)}
	default:
		fmt.Fprintf(errOut, "racecheck: unknown -checker %q (want epoch, vector, or both)\n", checker)
		return ExitUsage
	}
	start := time.Now()
	r := core.CheckDynamicRacesWith(prog, nil, core.RunConfig{World: world, Seed: seed}, chks...)
	wall := time.Since(start)
	if r.Err != nil {
		fmt.Fprintf(errOut, "racecheck: %s: run: %v\n", name, r.Err)
		return ExitFailure
	}
	races := chks[0].Races()
	fmt.Fprintf(out, "%s: %d dynamic race(s) (checker=%s, seed=%d, wall=%s)\n",
		name, len(races), checker, seed, wall.Round(time.Microsecond))
	if ec, ok := chks[0].(*trace.EpochChecker); ok {
		fmt.Fprintf(out, "  checker share: %s\n", time.Duration(ec.WallNS()).Round(time.Microsecond))
	}
	for _, rc := range races {
		fmt.Fprintf(out, "  %s\n", rc)
	}
	if checker == "both" {
		if !trace.SameVerdicts(chks[0].Races(), chks[1].Races()) {
			fmt.Fprintf(errOut, "racecheck: %s: epoch and vector checkers diverged:\n  epoch:  %v\n  vector: %v\n",
				name, chks[0].Races(), chks[1].Races())
			return ExitFailure
		}
		fmt.Fprintln(out, "  epoch and full-vector verdicts agree")
	}
	return ExitOK
}

// runDynamicBench runs the dynamic checker over embedded benchmarks'
// original (uninstrumented) programs under their evaluation worlds.
func runDynamicBench(env *Env, name, checker string, seed uint64, out, errOut io.Writer) int {
	var list []*bench.Benchmark
	if name == "all" {
		list = bench.All()
	} else {
		b := bench.ByName(name)
		if b == nil {
			fmt.Fprintf(errOut, "racecheck: unknown benchmark %q\n", name)
			return ExitUsage
		}
		list = []*bench.Benchmark{b}
	}
	status := ExitOK
	for _, b := range list {
		prog, err := env.loadProgram(b.Name, b.FullSource(), 1)
		if err != nil {
			fmt.Fprintf(errOut, "racecheck: %s: %v\n", b.Name, err)
			return ExitFailure
		}
		if rc := runDynamic(b.Name, prog, b.EvalWorld(4), seed, checker, out, errOut); rc != ExitOK {
			status = rc
		}
	}
	return status
}

// runGen is the one-shot repro path for generated scenarios: parse the
// spec, generate the program, and push it through the complete soundness
// pipeline. On failure it also prints a greedily minimized spec.
func runGen(text string, verbose bool, out, errOut io.Writer) int {
	spec, err := scenario.Parse(text)
	if err != nil {
		fmt.Fprintln(errOut, "racecheck:", err)
		return ExitUsage
	}
	return reportGen(scenario.RunPipeline(spec), spec, verbose, out, errOut)
}

// reportGen prints a pipeline result exactly as `racecheck -gen` always
// has; gen-pipeline jobs call it with buffers so their stdout/stderr are
// byte-identical to the offline CLI while the structured verdict fields
// come from the same Result.
func reportGen(r *scenario.Result, spec scenario.Spec, verbose bool, out, errOut io.Writer) int {
	if verbose {
		fmt.Fprint(out, r.Source)
	}
	fmt.Fprintf(out, "%s: %d static race pair(s), MHP kept %d, %d weak lock(s), %d dynamic race(s) on the original\n",
		spec, r.StaticPairs, r.KeptPairs, r.WeakLocks, r.OriginalRaces)
	fmt.Fprintf(out, "  stages passed: %s\n", strings.Join(r.Stages, " → "))
	if r.OK() {
		fmt.Fprintln(out, "  soundness pipeline: ok (certified clean, replay bit-identical, checkers agree)")
		return ExitOK
	}
	fmt.Fprintf(errOut, "racecheck: %v\n", r.Err)
	if min := scenario.Minimize(spec); min != spec {
		fmt.Fprintf(errOut, "racecheck: minimized repro: racecheck -gen '%s'\n", min)
	}
	return ExitFailure
}

// runBench certifies embedded benchmarks: the full pipeline (analysis,
// profile, instrumentation) runs per benchmark and the instrumented
// output is certified against the same report it was derived from.
func runBench(env *Env, name, label string, opts instrument.Options, useMHP, usePrecision bool, certOut string, out, errOut io.Writer) int {
	var list []*bench.Benchmark
	if name == "all" {
		list = bench.All()
	} else {
		b := bench.ByName(name)
		if b == nil {
			fmt.Fprintf(errOut, "racecheck: unknown benchmark %q\n", name)
			return ExitUsage
		}
		list = []*bench.Benchmark{b}
	}
	status := ExitOK
	for _, b := range list {
		prog, err := env.loadProgram(b.Name, b.FullSource(), 1)
		if err != nil {
			fmt.Fprintf(errOut, "racecheck: %s: %v\n", b.Name, err)
			return ExitFailure
		}
		rep := prog.Races
		switch {
		case useMHP && usePrecision:
			rep = prog.PrecisionRaces()
		case usePrecision:
			rep = prog.PrecisionRacesBase()
		case useMHP:
			rep = prog.RefinedRaces()
		}
		conc := prog.ProfileNonConcurrency(b.ProfileWorld, b.ProfileRuns, 10_000)
		ip, err := prog.InstrumentWith(rep, conc, opts)
		if err != nil {
			fmt.Fprintf(errOut, "racecheck: %s: %v\n", b.Name, err)
			return ExitFailure
		}
		cert, _, err := ip.Certify(label)
		if err != nil {
			fmt.Fprintf(errOut, "racecheck: %s: certify: %v\n", b.Name, err)
			return ExitFailure
		}
		if rc := reportCert(cert, certOut, out, errOut); rc != ExitOK {
			status = rc
		}
	}
	return status
}

// reportCert prints the verdict, optionally writes the JSON certificate,
// and returns the process exit status the certificate warrants.
func reportCert(cert *certify.Certificate, certOut string, out, errOut io.Writer) int {
	fmt.Fprintln(out, cert.Summary())
	data, err := certify.Render(cert)
	if err != nil {
		fmt.Fprintln(errOut, "racecheck: render certificate:", err)
		return ExitFailure
	}
	if certOut != "" {
		if err := os.MkdirAll(certOut, 0o755); err != nil {
			fmt.Fprintln(errOut, "racecheck:", err)
			return ExitFailure
		}
		fname := fmt.Sprintf("%s_%s.cert.json", cert.Program, strings.ReplaceAll(cert.Config, "+", "_"))
		if err := os.WriteFile(filepath.Join(certOut, fname), data, 0o644); err != nil {
			fmt.Fprintln(errOut, "racecheck:", err)
			return ExitFailure
		}
	}
	if !cert.OK {
		fmt.Fprint(errOut, string(data))
		return ExitFailure
	}
	return ExitOK
}

// printPairProvenance runs the full refinement chain — MHP, then the
// precision layer — over the raw RELAY report and prints one row per
// reported pair with its final disposition: pruned-by-mhp (with the MHP
// sub-reason), pruned-by-escape, pruned-by-mustlock, pruned-by-readonly,
// or instrumented. Rows are sorted by source position, then function
// pair, so the table is byte-stable and diffable across runs.
func printPairProvenance(path string, rep *relay.Report, out io.Writer) {
	refined := escape.Refine(mhp.Refine(rep))
	disposition := make(map[[2]ast.NodeID]string, len(refined.Pruned))
	counts := make(map[string]int, 5)
	for _, pp := range refined.Pruned {
		var label string
		switch pp.Reason {
		case "pre-fork", "join-ordered", "barrier-phase":
			label = "pruned-by-mhp(" + pp.Reason + ")"
			counts["pruned-by-mhp"]++
		case "escape":
			label = "pruned-by-escape"
			counts[label]++
		case "must-lock":
			label = "pruned-by-mustlock"
			counts[label]++
		case "read-only":
			label = "pruned-by-readonly"
			counts[label]++
		default:
			label = "pruned-by-" + pp.Reason
			counts[label]++
		}
		disposition[pp.Pair.Key()] = label
	}
	fmt.Fprintf(out, "%s: %d reported = %d pruned-by-mhp + %d pruned-by-escape + %d pruned-by-mustlock + %d pruned-by-readonly + %d instrumented\n",
		path, len(rep.Pairs),
		counts["pruned-by-mhp"], counts["pruned-by-escape"],
		counts["pruned-by-mustlock"], counts["pruned-by-readonly"],
		len(refined.Pairs))
	pairs := append([]*relay.RacePair(nil), rep.Pairs...)
	sort.SliceStable(pairs, func(i, j int) bool { return pairLess(pairs[i], pairs[j]) })
	for _, p := range pairs {
		label, ok := disposition[p.Key()]
		if !ok {
			label = "instrumented"
		}
		fmt.Fprintf(out, "  %-26s %s\n", label, pairString(p))
	}
}

func pairString(p *relay.RacePair) string {
	return fmt.Sprintf("%s:%s [w=%v ls=%v] <-> %s:%s [w=%v ls=%v]",
		p.A.Fn.Name, p.A.Pos, p.A.Write, p.A.Lockset,
		p.B.Fn.Name, p.B.Pos, p.B.Write, p.B.Lockset)
}

// pairLess orders race pairs by source position, then function names.
func pairLess(a, b *relay.RacePair) bool {
	ka := [4]int{a.A.Pos.Line, a.A.Pos.Col, a.B.Pos.Line, a.B.Pos.Col}
	kb := [4]int{b.A.Pos.Line, b.A.Pos.Col, b.B.Pos.Line, b.B.Pos.Col}
	for i := range ka {
		if ka[i] != kb[i] {
			return ka[i] < kb[i]
		}
	}
	fa, fb := a.FnPair(), b.FnPair()
	if fa[0] != fb[0] {
		return fa[0] < fb[0]
	}
	return fa[1] < fb[1]
}
