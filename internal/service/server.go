package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/pool"
)

// Server is the HTTP face of an Engine — the handler cmd/chimerad
// serves. The API:
//
//	POST /v1/jobs            submit a JobSpec; 202 + JobView
//	GET  /v1/jobs            list all jobs (submission order)
//	GET  /v1/jobs/{id}       poll one job
//	GET  /v1/jobs/{id}/wait  long-poll until terminal (or ?timeout=)
//	PUT  /v1/jobs/{id}/log   stream a CHIMLOG2 upload into an
//	                         awaiting-log replay-verify job
//	GET  /v1/jobs/{id}/log   stream a job's CHIMLOG2 spool out
//	GET  /metrics            Prometheus text exposition
//	GET  /metrics.json       engine metrics (internal/obs ServiceMetrics)
//	GET  /debug/traces       recent job traces, newest first
//	GET  /debug/traces/{id}  one retained trace by trace ID or job ID
//	GET  /healthz            liveness + draining flag
//
// Logs stream through io.Copy in both directions: the server never
// buffers a whole log in memory.
type Server struct {
	eng *Engine
	mux *http.ServeMux
}

// NewServer wraps an engine in its HTTP API.
func NewServer(eng *Engine) *Server {
	s := &Server{eng: eng, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /v1/jobs", s.submit)
	s.mux.HandleFunc("GET /v1/jobs", s.list)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.get)
	s.mux.HandleFunc("GET /v1/jobs/{id}/wait", s.wait)
	s.mux.HandleFunc("PUT /v1/jobs/{id}/log", s.putLog)
	s.mux.HandleFunc("GET /v1/jobs/{id}/log", s.getLog)
	s.mux.HandleFunc("GET /metrics", s.prometheus)
	s.mux.HandleFunc("GET /metrics.json", s.metrics)
	s.mux.HandleFunc("GET /debug/traces", s.traces)
	s.mux.HandleFunc("GET /debug/traces/{id}", s.trace)
	s.mux.HandleFunc("GET /healthz", s.healthz)
	return s
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) submit(w http.ResponseWriter, r *http.Request) {
	spec := new(JobSpec)
	body := http.MaxBytesReader(w, r.Body, 32<<20)
	if err := json.NewDecoder(body).Decode(spec); err != nil {
		httpError(w, http.StatusBadRequest, "decode job spec: %v", err)
		return
	}
	job, err := s.eng.Submit(spec)
	switch {
	case errors.Is(err, pool.ErrDraining):
		httpError(w, http.StatusServiceUnavailable, "draining: %v", err)
		return
	case errors.Is(err, pool.ErrFull):
		httpError(w, http.StatusTooManyRequests, "overloaded: %v", err)
		return
	case err != nil:
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusAccepted, job.View())
}

func (s *Server) list(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.eng.Views()})
}

func (s *Server) job(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	id := r.PathValue("id")
	job, ok := s.eng.Job(id)
	if !ok {
		httpError(w, http.StatusNotFound, "unknown job %s", id)
		return nil, false
	}
	return job, true
}

func (s *Server) get(w http.ResponseWriter, r *http.Request) {
	if job, ok := s.job(w, r); ok {
		writeJSON(w, http.StatusOK, job.View())
	}
}

// wait long-polls: it returns the job view as soon as the job is
// terminal, or the current view when the timeout (default 30s, capped at
// 5m) or the client disconnect arrives first.
func (s *Server) wait(w http.ResponseWriter, r *http.Request) {
	job, ok := s.job(w, r)
	if !ok {
		return
	}
	timeout := 30 * time.Second
	if q := r.URL.Query().Get("timeout"); q != "" {
		d, err := time.ParseDuration(q)
		if err != nil {
			httpError(w, http.StatusBadRequest, "bad timeout %q: %v", q, err)
			return
		}
		timeout = min(d, 5*time.Minute)
	}
	select {
	case <-job.Done():
	case <-time.After(timeout):
	case <-r.Context().Done():
		return
	}
	writeJSON(w, http.StatusOK, job.View())
}

func (s *Server) putLog(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	n, err := s.eng.AttachLog(id, r.Body)
	if err != nil {
		status := http.StatusBadRequest
		switch {
		case errors.Is(err, ErrUnknownJob):
			status = http.StatusNotFound
		case errors.Is(err, ErrNotAwaitingLog):
			status = http.StatusConflict
		}
		httpError(w, status, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]int64{"log_bytes": n})
}

func (s *Server) getLog(w http.ResponseWriter, r *http.Request) {
	if _, ok := s.job(w, r); !ok {
		return
	}
	f, err := s.eng.OpenLog(r.PathValue("id"))
	if err != nil {
		httpError(w, http.StatusNotFound, "no log spool: %v", err)
		return
	}
	defer f.Close()
	w.Header().Set("Content-Type", "application/octet-stream")
	n, _ := io.Copy(w, f)
	s.eng.tel.AddSpoolBytes(0, n)
}

func (s *Server) prometheus(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write(s.eng.Metrics().Prometheus())
}

func (s *Server) traces(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"traces": s.eng.Traces()})
}

func (s *Server) trace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rec, ok := s.eng.Trace(id)
	if !ok {
		httpError(w, http.StatusNotFound, "no retained trace %s", id)
		return
	}
	writeJSON(w, http.StatusOK, rec)
}

func (s *Server) metrics(w http.ResponseWriter, r *http.Request) {
	b, err := s.eng.Metrics().Marshal()
	if err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(b)
}

func (s *Server) healthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"ok": true, "draining": s.eng.Draining()})
}
