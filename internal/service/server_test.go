package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func newTestServer(t *testing.T) (*httptest.Server, *Client, *Engine) {
	t.Helper()
	eng := NewEngine(EngineConfig{
		Shards:     4,
		Depth:      256,
		SpoolDir:   t.TempDir(),
		JobTimeout: 90 * time.Second,
	})
	ts := httptest.NewServer(NewServer(eng))
	t.Cleanup(func() {
		ts.Close()
		eng.Drain(time.Minute)
	})
	return ts, NewClient(ts.URL), eng
}

func TestServerJobLifecycle(t *testing.T) {
	ts, c, _ := newTestServer(t)

	accepted, err := c.Submit(&JobSpec{Kind: JobAnalyze, Tenant: "acme", Request: inlineReq("racy.mc", racySrc, nil)})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if accepted.ID == "" || accepted.SpecHash == "" {
		t.Fatalf("accepted view incomplete: %+v", accepted)
	}
	v, err := c.Wait(accepted.ID)
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if v.State != StateDone || v.Result == nil {
		t.Fatalf("state %s, error %q", v.State, v.Error)
	}
	var offOut, offErr bytes.Buffer
	offCode := RunRequest(inlineReq("racy.mc", racySrc, nil), nil, &offOut, &offErr)
	if v.Result.ExitCode != offCode || v.Result.Stdout != offOut.String() || v.Result.Stderr != offErr.String() {
		t.Errorf("wire verdict diverged from offline CLI")
	}

	// Poll and list agree.
	got, err := c.Job(accepted.ID)
	if err != nil || got.State != StateDone {
		t.Fatalf("Job: %+v, %v", got, err)
	}
	resp, err := http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list struct {
		Jobs []JobView `json:"jobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list.Jobs) != 1 || list.Jobs[0].ID != accepted.ID {
		t.Errorf("list = %+v, want the one submitted job", list.Jobs)
	}

	// Health endpoint reports live and not draining.
	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	var health struct {
		OK       bool `json:"ok"`
		Draining bool `json:"draining"`
	}
	if err := json.NewDecoder(hr.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if !health.OK || health.Draining {
		t.Errorf("healthz = %+v", health)
	}
}

func TestServerErrors(t *testing.T) {
	ts, c, _ := newTestServer(t)

	// Unknown job: 404 on poll, wait, and log download.
	if _, err := c.Job("j999999-nope"); err == nil || !strings.Contains(err.Error(), "404") {
		t.Errorf("unknown job poll: %v, want 404", err)
	}
	if _, err := c.UploadLog("j999999-nope", strings.NewReader("x")); err == nil || !strings.Contains(err.Error(), "404") {
		t.Errorf("unknown job upload: %v, want 404", err)
	}

	// Malformed spec JSON: 400.
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed spec: %d, want 400", resp.StatusCode)
	}

	// Invalid spec (validation): 400 with the message.
	if _, err := c.Submit(&JobSpec{Kind: JobRecord}); err == nil || !strings.Contains(err.Error(), "inline source") {
		t.Errorf("invalid spec: %v, want validation message", err)
	}

	// Upload to a job that is not awaiting a log: 409.
	v, err := c.Submit(&JobSpec{Kind: JobGenPipeline, Tenant: "t", Spec: "bogus:1:small"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(v.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := c.UploadLog(v.ID, strings.NewReader("x")); err == nil || !strings.Contains(err.Error(), "409") {
		t.Errorf("conflict upload: %v, want 409", err)
	}

	// Bad wait timeout: 400.
	wr, err := http.Get(ts.URL + "/v1/jobs/" + v.ID + "/wait?timeout=banana")
	if err != nil {
		t.Fatal(err)
	}
	wr.Body.Close()
	if wr.StatusCode != http.StatusBadRequest {
		t.Errorf("bad timeout: %d, want 400", wr.StatusCode)
	}
}

// TestServerLogRoundTrip records over HTTP, streams the CHIMLOG2 log
// down, streams it back up into a replay-verify job, and expects a
// bit-match.
func TestServerLogRoundTrip(t *testing.T) {
	_, c, _ := newTestServer(t)

	rec, err := c.Submit(&JobSpec{Kind: JobRecord, Tenant: "acme", Name: "clean", Source: cleanSrc, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	recDone, err := c.Wait(rec.ID)
	if err != nil || recDone.State != StateDone {
		t.Fatalf("record: %+v, %v", recDone, err)
	}

	var log bytes.Buffer
	n, err := c.DownloadLog(rec.ID, &log)
	if err != nil || n != recDone.Result.LogBytes {
		t.Fatalf("DownloadLog: n=%d err=%v, want %d bytes", n, err, recDone.Result.LogBytes)
	}

	ver, err := c.Submit(&JobSpec{Kind: JobReplayVerify, Tenant: "acme", Name: "clean", Source: cleanSrc, LogUpload: true})
	if err != nil {
		t.Fatal(err)
	}
	if ver.State != StateAwaitingLog {
		t.Fatalf("state %s, want awaiting-log", ver.State)
	}
	if _, err := c.UploadLog(ver.ID, bytes.NewReader(log.Bytes())); err != nil {
		t.Fatalf("UploadLog: %v", err)
	}
	verDone, err := c.Wait(ver.ID)
	if err != nil {
		t.Fatal(err)
	}
	if verDone.Result == nil || verDone.Result.ReplayMatches == nil || !*verDone.Result.ReplayMatches {
		t.Fatalf("uploaded replay did not match: %+v (error %q)", verDone.Result, verDone.Error)
	}
	if !strings.Contains(verDone.Result.Stdout, recDone.Result.OutputHash) {
		t.Errorf("verify stdout %q lacks recorded hash %s", verDone.Result.Stdout, recDone.Result.OutputHash)
	}
}

func TestServerDrainReturns503(t *testing.T) {
	_, c, eng := newTestServer(t)
	if !eng.Drain(time.Minute) {
		t.Fatal("drain did not complete")
	}
	_, err := c.Submit(&JobSpec{Kind: JobGenPipeline, Spec: "counters:7:small"})
	if err == nil || !strings.Contains(err.Error(), "503") {
		t.Errorf("post-drain submit: %v, want 503", err)
	}
}

// TestServerConcurrentTenantsByteIdentity is the acceptance gate: 32
// concurrent submissions spread across two tenants and four distinct
// requests, every verdict byte-identical to the offline CLI, and
// /metrics reporting per-tenant hit ratios afterwards.
func TestServerConcurrentTenantsByteIdentity(t *testing.T) {
	_, c, _ := newTestServer(t)

	type variant struct {
		name string
		mut  func(*Request)
	}
	variants := []variant{
		{"racy-default", nil},
		{"racy-mhp", func(r *Request) { r.MHP = true }},
		{"clean-verbose", func(r *Request) { r.Verbose = true }},
		{"clean-certify", func(r *Request) { r.Certify = true }},
	}
	srcFor := func(v variant) (string, string) {
		if strings.HasPrefix(v.name, "racy") {
			return "racy.mc", racySrc
		}
		return "clean.mc", cleanSrc
	}

	// Offline ground truth, one per variant.
	type verdict struct {
		code     int
		out, err string
	}
	offline := make([]verdict, len(variants))
	for i, v := range variants {
		name, src := srcFor(v)
		var out, errOut bytes.Buffer
		offline[i] = verdict{RunRequest(inlineReq(name, src, v.mut), nil, &out, &errOut), "", ""}
		offline[i].out, offline[i].err = out.String(), errOut.String()
	}

	const submissions = 32
	tenants := []string{"alice", "bob"}
	var wg sync.WaitGroup
	errCh := make(chan error, submissions)
	for i := 0; i < submissions; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			v := variants[i%len(variants)]
			tenant := tenants[i%len(tenants)]
			name, src := srcFor(v)
			accepted, err := c.Submit(&JobSpec{Kind: JobAnalyze, Tenant: tenant, Request: inlineReq(name, src, v.mut)})
			if err != nil {
				errCh <- fmt.Errorf("submit %d (%s): %v", i, v.name, err)
				return
			}
			done, err := c.Wait(accepted.ID)
			if err != nil {
				errCh <- fmt.Errorf("wait %d (%s): %v", i, v.name, err)
				return
			}
			if done.State != StateDone || done.Result == nil {
				errCh <- fmt.Errorf("job %d (%s): state %s, error %q", i, v.name, done.State, done.Error)
				return
			}
			want := offline[i%len(variants)]
			if done.Result.ExitCode != want.code || done.Result.Stdout != want.out || done.Result.Stderr != want.err {
				errCh <- fmt.Errorf("job %d (%s, tenant %s): verdict diverged from offline CLI", i, v.name, tenant)
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}

	m, err := c.Metrics()
	if err != nil {
		t.Fatalf("Metrics: %v", err)
	}
	if m.Jobs.Done != submissions {
		t.Errorf("metrics: %d done jobs, want %d", m.Jobs.Done, submissions)
	}
	if len(m.Tenants) != 2 {
		t.Fatalf("metrics: %d tenants, want 2", len(m.Tenants))
	}
	for _, tm := range m.Tenants {
		if tm.Jobs != submissions/2 {
			t.Errorf("tenant %s: %d jobs, want %d", tm.Tenant, tm.Jobs, submissions/2)
		}
		if tm.CacheHitRatio <= 0 {
			t.Errorf("tenant %s: cache hit ratio %v, want > 0 after repeated identical submissions", tm.Tenant, tm.CacheHitRatio)
		}
	}
}

// TestRemoteRunMatchesOffline drives racecheck's -server client mode end
// to end against a live server, from a real file on disk.
func TestRemoteRunMatchesOffline(t *testing.T) {
	ts, _, _ := newTestServer(t)

	path := filepath.Join(t.TempDir(), "racy.mc")
	if err := os.WriteFile(path, []byte(racySrc), 0o644); err != nil {
		t.Fatal(err)
	}

	build := func() *Request {
		req := NewRequest()
		req.MHP = true
		req.Args = []string{path}
		return req
	}
	var offOut, offErr bytes.Buffer
	offCode := RunRequest(build(), nil, &offOut, &offErr)

	var out, errOut bytes.Buffer
	code := RemoteRun(ts.URL, "cli", build(), &out, &errOut)
	if code != offCode || out.String() != offOut.String() || errOut.String() != offErr.String() {
		t.Errorf("RemoteRun diverged from offline:\nexit %d vs %d\n--- remote ---\n%s%s\n--- offline ---\n%s%s",
			code, offCode, out.String(), errOut.String(), offOut.String(), offErr.String())
	}

	// Local-filesystem modes are rejected client-side as usage errors.
	badReq := build()
	badReq.MetricsPath = "m.json"
	var bo, be bytes.Buffer
	if code := RemoteRun(ts.URL, "cli", badReq, &bo, &be); code != ExitUsage {
		t.Errorf("RemoteRun with -metrics: exit %d, want %d", code, ExitUsage)
	}

	// -trace, by contrast, is handled client-side: the job returns its
	// span tree and the client writes a Perfetto file naming queue-wait
	// and every pipeline stage.
	tracePath := filepath.Join(t.TempDir(), "req.trace.json")
	traced := build()
	traced.TracePath = tracePath
	var to, te bytes.Buffer
	if code := RemoteRun(ts.URL, "cli", traced, &to, &te); code != offCode {
		t.Fatalf("RemoteRun with -trace: exit %d, want %d (stderr %q)", code, offCode, te.String())
	}
	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatalf("read trace: %v", err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	names := make(map[string]bool, len(doc.TraceEvents))
	for _, ev := range doc.TraceEvents {
		names[ev.Name] = true
	}
	for _, want := range []string{"request", "queue-wait", "run", "parse", "typecheck", "analyze", "mhp-refine", "report", "verdict-encode"} {
		if !names[want] {
			t.Errorf("trace lacks span %q (have %v)", want, names)
		}
	}
	// A missing source file fails exactly like the offline CLI.
	missing := build()
	missing.Args = []string{filepath.Join(t.TempDir(), "absent.mc")}
	var mo, me bytes.Buffer
	if code := RemoteRun(ts.URL, "cli", missing, &mo, &me); code != ExitFailure {
		t.Errorf("RemoteRun on missing file: exit %d, want %d", code, ExitFailure)
	}
	if !strings.Contains(me.String(), "racecheck:") {
		t.Errorf("missing-file stderr %q lacks the racecheck prefix", me.String())
	}
}
