// Package service is the job-oriented engine behind Chimera-as-a-service:
// the hybrid pipeline (static race analysis → weak-lock instrumentation →
// record/replay → verification), lifted out of the one-shot CLI entry
// points into a long-running, sharded, multi-tenant server.
//
// The package has three layers:
//
//   - The request layer (Request, RunRequest): racecheck's entire
//     verdict-producing pipeline, refactored out of cmd/racecheck. The
//     CLI parses flags into a Request and calls RunRequest in process;
//     the server executes the very same RunRequest against a submitted
//     Request. Every byte a verdict prints therefore comes from one code
//     path, which is what makes the service's differential guarantee —
//     verdicts over the wire are byte-identical to the offline CLI —
//     hold by construction rather than by testing alone (it is still
//     pinned by tests and a CI gate).
//
//   - The job layer (Job, Engine): a deterministic-spec-hashed job
//     (analyze | record | replay-verify | gen-pipeline) scheduled on a
//     sharded worker pool (internal/pool, the generalization of RELAY's
//     SCC-wave pool). Jobs are routed by spec hash, so identical
//     re-submissions serialize on one shard and hit the caches warm.
//     Tenants share one summary.Store through tenant-prefixed views
//     (summary.DeriveKey) and get their own core.Cache, so cross-tenant
//     key collisions are impossible while within-tenant resubmissions
//     reuse every artifact; hit/partial/miss ratios are accounted per
//     tenant. Record jobs stream CHIMLOG2 to a disk spool as records
//     commit; replay-verify jobs replay straight from the spool with
//     replay.StreamReplayer — neither holds a whole log in memory at the
//     job layer.
//
//   - The transport layer (Server, Client): a small HTTP API
//     (cmd/chimerad) for submitting jobs, polling or long-polling
//     results, streaming logs in and out, and scraping /metrics; and the
//     racecheck -server client mode that proxies the existing flag
//     vocabulary through it.
package service

// Process exit codes shared by racecheck (offline and -server client
// mode), the chimerad job engine, and scripts that drive them. These
// used to be scattered magic numbers across cmd/racecheck; the table is
// documented in the README.
const (
	// ExitOK: success — the verdict is clean (no usage error, pipeline
	// ran, certificates clean where requested).
	ExitOK = 0
	// ExitFailure: the pipeline ran and failed — analysis error, failed
	// certificate, replay divergence, checker disagreement, or an I/O
	// error on an input file.
	ExitFailure = 1
	// ExitUsage: flag or argument errors — the pipeline never ran.
	ExitUsage = 2
	// ExitArtifact: a requested output artifact (-trace/-metrics) could
	// not be created or written; distinct from ExitFailure so scripts can
	// tell "could not write the artifacts" from "the pipeline failed".
	ExitArtifact = 3
	// ExitCorpus: the -batch corpus directory is missing, not a
	// directory, or holds no *.mc files; distinct from per-file analysis
	// failures (ExitFailure) and usage errors (ExitUsage).
	ExitCorpus = 4
)
