package service

import (
	"bytes"
	"regexp"
	"testing"

	"repro/internal/core"
	"repro/internal/summary"
)

// racySrc has a classic unlock-free increment race between two workers.
const racySrc = `int x;
void bump(int id) { x = x + id; }
int main(void) {
    int t1 = spawn(bump, 1);
    int t2 = spawn(bump, 2);
    join(t1);
    join(t2);
    return x;
}
`

// cleanSrc is the barrier-phased program racecheck's goldens use: every
// pair is ordered, so certification succeeds.
const cleanSrc = `int bar;
int data;
void phase_a(int id) { data = id; }
void phase_b(int id) { data = data + id; }
void worker(int id) {
    phase_a(id);
    barrier_wait(&bar);
    phase_b(id);
}
int main(void) {
    barrier_init(&bar, 2);
    int t1 = spawn(worker, 1);
    int t2 = spawn(worker, 2);
    join(t1);
    join(t2);
    return data;
}
`

// inlineReq builds an analyze request carrying src inline under the
// display path name, with the given extra flag mutations applied.
func inlineReq(name, src string, mut func(*Request)) *Request {
	req := NewRequest()
	req.Args = []string{name}
	req.Source = src
	req.HasSource = true
	if mut != nil {
		mut(req)
	}
	return req
}

// tenantEnv builds the environment the engine gives one tenant: a
// whole-program cache over a tenant view of a summary store.
func tenantEnv(store *summary.Store, tenant string) *Env {
	view := store.View(tenant)
	return &Env{Cache: core.NewIncrementalCache(view), Store: view}
}

// timingRE matches the wall-clock fields of -dynamic output — the only
// part of any verdict that varies between two runs of the *same* path
// (offline-vs-offline included). Everything else must match to the byte.
var timingRE = regexp.MustCompile(`wall=[0-9][^,)]*|checker share: [0-9].*`)

func stripTimings(b []byte) []byte {
	return timingRE.ReplaceAll(b, []byte("T"))
}

// TestRunRequestEnvByteIdentity is the service's core guarantee: running
// a request against a tenant environment (cold or warm) produces output
// byte-identical to the offline CLI path (nil env), for every analysis
// mode the server accepts. (Timing fields are normalized first; they
// differ even between two offline runs.)
func TestRunRequestEnvByteIdentity(t *testing.T) {
	variants := []struct {
		name string
		mut  func(*Request)
	}{
		{"default", nil},
		{"verbose", func(r *Request) { r.Verbose = true }},
		{"mhp", func(r *Request) { r.MHP = true }},
		{"mhp-precision", func(r *Request) { r.MHP, r.Precision = true, true }},
		{"precision", func(r *Request) { r.Precision = true }},
		{"pairs", func(r *Request) { r.Pairs = true }},
		{"certify", func(r *Request) { r.Certify = true }},
		{"dynamic", func(r *Request) { r.Dynamic = true; r.Seed = 3 }},
		{"incremental", func(r *Request) { r.Incremental = true }},
		{"parallel", func(r *Request) { r.Parallel = 4 }},
	}
	for _, src := range []struct{ name, text string }{
		{"racy.mc", racySrc},
		{"clean.mc", cleanSrc},
	} {
		store := summary.NewStore()
		env := tenantEnv(store, "t1")
		for _, v := range variants {
			var offOut, offErr bytes.Buffer
			offCode := RunRequest(inlineReq(src.name, src.text, v.mut), nil, &offOut, &offErr)
			// Two env runs: the first is cold, the second hits the
			// tenant's whole-program cache. Both must match offline.
			for pass := 0; pass < 2; pass++ {
				var out, errOut bytes.Buffer
				code := RunRequest(inlineReq(src.name, src.text, v.mut), env, &out, &errOut)
				if code != offCode {
					t.Errorf("%s/%s pass %d: exit %d, offline %d", src.name, v.name, pass, code, offCode)
				}
				if !bytes.Equal(stripTimings(out.Bytes()), stripTimings(offOut.Bytes())) {
					t.Errorf("%s/%s pass %d: stdout diverged from offline:\n--- env ---\n%s\n--- offline ---\n%s",
						src.name, v.name, pass, out.Bytes(), offOut.Bytes())
				}
				if !bytes.Equal(stripTimings(errOut.Bytes()), stripTimings(offErr.Bytes())) {
					t.Errorf("%s/%s pass %d: stderr diverged from offline:\n--- env ---\n%s\n--- offline ---\n%s",
						src.name, v.name, pass, errOut.Bytes(), offErr.Bytes())
				}
			}
		}
	}
}

func TestRequestSpecHash(t *testing.T) {
	a := inlineReq("p.mc", racySrc, nil)
	b := inlineReq("p.mc", racySrc, nil)
	if a.SpecHash() != b.SpecHash() {
		t.Fatal("equal requests hash differently")
	}
	c := inlineReq("p.mc", racySrc, func(r *Request) { r.MHP = true })
	if a.SpecHash() == c.SpecHash() {
		t.Fatal("-mhp did not change the spec hash")
	}
	d := inlineReq("p.mc", cleanSrc, nil)
	if a.SpecHash() == d.SpecHash() {
		t.Fatal("different source did not change the spec hash")
	}
}

func TestValidateRemoteRejectsLocalModes(t *testing.T) {
	for _, mut := range []func(*Request){
		func(r *Request) { r.BatchDir = "corpus" },
		func(r *Request) { r.CertOut = "out" },
		func(r *Request) { r.Instrumented = "prog.mc" },
		func(r *Request) { r.TracePath = "t.json" },
		func(r *Request) { r.MetricsPath = "m.json" },
		func(r *Request) { r.ShowCFG = true },
	} {
		req := inlineReq("p.mc", racySrc, mut)
		if err := req.ValidateRemote(); err == nil {
			t.Errorf("local-filesystem mode %+v passed ValidateRemote", req)
		}
	}
	if err := inlineReq("p.mc", racySrc, nil).ValidateRemote(); err != nil {
		t.Errorf("plain analyze rejected: %v", err)
	}
}

func TestJobSpecHashAndValidate(t *testing.T) {
	spec := &JobSpec{Kind: JobAnalyze, Tenant: "a", Request: inlineReq("p.mc", racySrc, nil)}
	if spec.Hash() != (&JobSpec{Kind: JobAnalyze, Tenant: "a", Request: inlineReq("p.mc", racySrc, nil)}).Hash() {
		t.Fatal("equal specs hash differently")
	}
	other := &JobSpec{Kind: JobAnalyze, Tenant: "b", Request: inlineReq("p.mc", racySrc, nil)}
	if spec.Hash() == other.Hash() {
		t.Fatal("tenant did not change the job hash")
	}

	bad := []*JobSpec{
		{Kind: "mystery"},
		{Kind: JobAnalyze},
		{Kind: JobAnalyze, Request: &Request{Args: []string{"local.mc"}}}, // path without inline source
		{Kind: JobRecord},
		{Kind: JobRecord, Source: racySrc, Config: "nope"},
		{Kind: JobReplayVerify},
		{Kind: JobReplayVerify, LogJob: "j1", LogUpload: true},
		{Kind: JobReplayVerify, LogUpload: true}, // upload without source
		{Kind: JobGenPipeline},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("spec %+v validated, want error", s)
		}
	}
	good := []*JobSpec{
		{Kind: JobAnalyze, Request: inlineReq("p.mc", racySrc, nil)},
		{Kind: JobRecord, Source: racySrc},
		{Kind: JobReplayVerify, LogJob: "j000001-abc"},
		{Kind: JobReplayVerify, LogUpload: true, Source: racySrc},
		{Kind: JobGenPipeline, Spec: "counters:7:small"},
	}
	for _, s := range good {
		if err := s.Validate(); err != nil {
			t.Errorf("spec %+v rejected: %v", s, err)
		}
	}
}
