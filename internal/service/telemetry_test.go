package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestFreshTenantZeroTrafficRatios pins the zero-traffic guard: a tenant
// that exists but has produced no cache or summary-store traffic reports
// hit ratios of exactly 0 — never NaN — and the metrics document still
// marshals (encoding/json rejects NaN, so a regression here fails both
// assertions).
func TestFreshTenantZeroTrafficRatios(t *testing.T) {
	e := newTestEngine(t)
	e.tenant("fresh") // materialize an empty tenant view, no traffic

	m := e.Metrics()
	if len(m.Tenants) != 1 || m.Tenants[0].Tenant != "fresh" {
		t.Fatalf("tenants = %+v, want one entry for fresh", m.Tenants)
	}
	tn := m.Tenants[0]
	if tn.CacheHitRatio != 0 || tn.SummaryHitRatio != 0 {
		t.Errorf("fresh tenant ratios = %v/%v, want 0/0", tn.CacheHitRatio, tn.SummaryHitRatio)
	}
	b, err := m.Marshal()
	if err != nil {
		t.Fatalf("Marshal with zero-traffic tenant: %v", err)
	}
	for _, bad := range []string{"NaN", `"cache_hit_ratio":null`, `"summary_hit_ratio":null`} {
		if bytes.Contains(b, []byte(bad)) {
			t.Errorf("metrics JSON contains %q:\n%s", bad, b)
		}
	}

	// The Prometheus rendering of the same document must expose the 0.
	text := string(m.Prometheus())
	if !strings.Contains(text, `chimerad_tenant_cache_hit_ratio{tenant="fresh"} 0`) {
		t.Errorf("exposition missing zero hit ratio:\n%s", text)
	}
}

// promSeries parses a Prometheus text exposition into series → value,
// failing the test on any malformed non-comment line.
func promSeries(t *testing.T, text string) map[string]float64 {
	t.Helper()
	out := make(map[string]float64)
	for _, line := range strings.Split(strings.TrimSpace(text), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("unparseable exposition line %q", line)
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			t.Fatalf("line %q: bad value: %v", line, err)
		}
		out[line[:sp]] = v
	}
	return out
}

// counterRE matches the series whose values must never decrease between
// scrapes: explicit *_total counters plus histogram _bucket/_sum/_count.
var counterRE = regexp.MustCompile(`_total(\{|$)|_bucket\{|_sum\{|_count\{`)

// TestMetricsMonotonicUnderLoad hammers a live server with 32 concurrent
// submitters while a scraper reads /metrics, asserting that (a) every
// exposition parses line-by-line throughout and (b) no counter series
// ever decreases between consecutive scrapes. Run under -race this also
// exercises the histogram and gauge paths for data races.
func TestMetricsMonotonicUnderLoad(t *testing.T) {
	ts, c, _ := newTestServer(t)

	const submitters = 32
	var wg sync.WaitGroup
	for i := 0; i < submitters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			spec := &JobSpec{
				Kind:   JobRecord,
				Tenant: fmt.Sprintf("tenant-%d", i%4),
				Name:   fmt.Sprintf("load-%d", i),
				Source: cleanSrc,
				Seed:   uint64(i + 1),
			}
			v, err := c.Submit(spec)
			if err != nil {
				t.Errorf("submit %d: %v", i, err)
				return
			}
			if _, err := c.Wait(v.ID); err != nil {
				t.Errorf("wait %d: %v", i, err)
			}
		}(i)
	}

	// Scrape continuously until all submitters finish, then once more so
	// the final deltas are covered too.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	prev := map[string]float64{}
	scrape := func() {
		resp, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			t.Errorf("scrape: %v", err)
			return
		}
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
			t.Errorf("scrape Content-Type = %q", ct)
		}
		body := new(bytes.Buffer)
		body.ReadFrom(resp.Body)
		resp.Body.Close()
		cur := promSeries(t, body.String())
		for series, v := range cur {
			if !counterRE.MatchString(series) {
				continue
			}
			if p, ok := prev[series]; ok && v < p {
				t.Errorf("counter %s decreased: %v -> %v", series, p, v)
			}
		}
		prev = cur
	}
	for {
		scrape()
		select {
		case <-done:
			scrape()
			if len(prev) == 0 {
				t.Fatal("no series scraped")
			}
			return
		case <-time.After(5 * time.Millisecond):
		}
	}
}

// TestMaskedMetricsDeterminism runs the same job sequence on two fresh
// engines and asserts the masked metrics documents are byte-equal — the
// service analogue of the Report.MaskWall byte-identity pin: masking
// removes load- and wall-dependent state, everything structural must
// already be deterministic.
func TestMaskedMetricsDeterminism(t *testing.T) {
	runOnce := func() *obs.ServiceMetrics {
		e := newTestEngine(t)
		submitAndAwait(t, e, &JobSpec{Kind: JobRecord, Tenant: "acme", Name: "clean", Source: cleanSrc, Seed: 5})
		submitAndAwait(t, e, &JobSpec{Kind: JobGenPipeline, Tenant: "acme", Spec: "prodcons:1:small"})
		e.Drain(time.Minute)
		return e.Metrics()
	}
	a, b := runOnce(), runOnce()
	a.Mask()
	b.Mask()
	ja, err := a.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	jb, err := b.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ja, jb) {
		t.Errorf("masked metrics differ across identical runs:\n--- a:\n%s\n--- b:\n%s", ja, jb)
	}
	if !json.Valid(ja) {
		t.Error("masked metrics not valid JSON")
	}
}
