package service

import (
	"sync"

	"repro/internal/obs"
)

// TraceRecord is one finished job's trace as retained by the engine's
// bounded ring and served at /debug/traces: identity, outcome, the
// headline latencies, and the full span tree.
type TraceRecord struct {
	TraceID     string        `json:"trace_id"`
	JobID       string        `json:"job_id"`
	Kind        JobKind       `json:"kind"`
	Tenant      string        `json:"tenant,omitempty"`
	State       JobState      `json:"state"`
	QueueWaitNS int64         `json:"queue_wait_ns"`
	RunNS       int64         `json:"run_ns"`
	Spans       *obs.SpanNode `json:"spans"`
}

// traceRing keeps the most recent cap trace records, newest last in
// recs; once full, each push evicts the oldest.
type traceRing struct {
	mu   sync.Mutex
	cap  int
	recs []*TraceRecord
}

func newTraceRing(cap int) *traceRing {
	if cap < 1 {
		cap = 1
	}
	return &traceRing{cap: cap}
}

func (r *traceRing) push(rec *TraceRecord) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.recs) == r.cap {
		copy(r.recs, r.recs[1:])
		r.recs[len(r.recs)-1] = rec
		return
	}
	r.recs = append(r.recs, rec)
}

// list returns the retained records newest first.
func (r *traceRing) list() []*TraceRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*TraceRecord, len(r.recs))
	for i, rec := range r.recs {
		out[len(out)-1-i] = rec
	}
	return out
}

// find returns the newest record whose trace ID or job ID matches.
func (r *traceRing) find(id string) (*TraceRecord, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := len(r.recs) - 1; i >= 0; i-- {
		if r.recs[i].TraceID == id || r.recs[i].JobID == id {
			return r.recs[i], true
		}
	}
	return nil, false
}
