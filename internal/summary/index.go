package summary

import (
	"bytes"
	"crypto/sha256"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/callgraph"
	"repro/internal/minic/ast"
	"repro/internal/minic/types"
	"repro/internal/pointsto"
)

// Indexer computes the content-addressed key of every function in one
// analyzed program and provides the translation maps the portable artifact
// codecs need: node IDs to per-declaration ordinals (and back), and
// abstract objects to canonical keys (and back).
//
// A function's key is the SHA-256 of
//
//   - its canonical source: the pretty-printed declaration, so whitespace
//     and position shifts do not invalidate;
//   - its prelude: the printed declarations of the globals it names and of
//     every struct (type shape the summary can depend on);
//   - its points-to fragment: per node ordinal, the semantic resolution the
//     RELAY walk reads — expression types, identifier bindings (kind, slot,
//     address-takenness), the canonical keys of the node's may-point-to
//     objects, and direct/indirect/spawn call targets;
//   - its callee SCCs' keys (recursively), which is what turns one edit
//     into exactly the transitive-caller dirty cone.
//
// Mutually recursive functions share an SCC-level key component, so a
// recursion group is reused or recomputed as a unit.
//
// Fail-closed: duplicate top-level names make the whole program
// unkeyable, and any object or node the canonical grammars cannot name
// makes the functions touching it unkeyable. Unkeyable functions are
// always recomputed and never stored.
type Indexer struct {
	info *types.Info
	pta  *pointsto.Analysis
	cg   *callgraph.Graph

	refOf []nodeRef // by dense NodeID; Fn == "" marks an unowned node
	nodes map[string][]ast.Node

	objKeys []string // by ObjID; "" marks an unkeyable object
	objOf   map[string]pointsto.ObjID
	objRank []int32 // lexicographic rank of objKeys by ObjID; -1 = unkeyable

	typeStr     map[*types.Type]string // memoized Type.String()
	globalPrint map[string]string      // memoized declPrint of global VarDecls

	funcKey map[string]Key
	keyable map[string]bool

	programOnce sync.Once
	programKey  Key
	invalid     bool
}

type nodeRef struct {
	Fn  string
	Ord int
}

// NewIndexer indexes one analyzed program sequentially.
func NewIndexer(info *types.Info, pta *pointsto.Analysis, cg *callgraph.Graph) *Indexer {
	return NewIndexerParallel(info, pta, cg, 1)
}

// NewIndexerParallel indexes one analyzed program, fanning the
// independent per-function hash computations over up to workers
// goroutines. Every key is identical for every worker count: only the
// per-function content/prelude/fragment hashes run concurrently; the
// bottom-up SCC key combination is sequential.
func NewIndexerParallel(info *types.Info, pta *pointsto.Analysis, cg *callgraph.Graph, workers int) *Indexer {
	ix := &Indexer{
		info:        info,
		pta:         pta,
		cg:          cg,
		refOf:       make([]nodeRef, info.File.MaxID),
		nodes:       make(map[string][]ast.Node),
		objOf:       make(map[string]pointsto.ObjID),
		funcKey:     make(map[string]Key),
		keyable:     make(map[string]bool),
		typeStr:     make(map[*types.Type]string),
		globalPrint: make(map[string]string),
	}
	ix.checkUniqueNames()
	ix.buildOrdinals()
	ix.buildObjKeys()
	ix.computeKeys(workers)
	return ix
}

// Valid reports whether the program could be keyed at all; false means
// every function is treated as dirty (fail-closed).
func (ix *Indexer) Valid() bool { return !ix.invalid }

// Info returns the semantic info this index was built over.
func (ix *Indexer) Info() *types.Info { return ix.info }

// FuncKey returns the content key of the named function; ok is false for
// unkeyable (fail-closed) functions.
func (ix *Indexer) FuncKey(name string) (Key, bool) {
	if !ix.keyable[name] {
		return Key{}, false
	}
	return ix.funcKey[name], true
}

// Keyable reports whether the named function has a usable key.
func (ix *Indexer) Keyable(name string) bool { return ix.keyable[name] }

// ProgramKey is the whole-program content key (SHA-256 of the canonical
// program print); it addresses whole-program artifacts such as MHP facts.
// The full-program print is computed on first use: loads that never read
// or write whole-program artifacts never pay for it.
func (ix *Indexer) ProgramKey() Key {
	ix.programOnce.Do(func() {
		ix.programKey = sha256.Sum256(append([]byte("program\x00"), []byte(ast.Print(ix.info.File))...))
	})
	return ix.programKey
}

// NodeRef resolves a node ID to its owning declaration and pre-order
// ordinal within it.
func (ix *Indexer) NodeRef(id ast.NodeID) (fn string, ord int, ok bool) {
	if int(id) < 0 || int(id) >= len(ix.refOf) {
		return "", 0, false
	}
	r := ix.refOf[id]
	return r.Fn, r.Ord, r.Fn != ""
}

// NodeAt resolves (declaration, ordinal) back to the node of the current
// parse.
func (ix *Indexer) NodeAt(fn string, ord int) (ast.Node, bool) {
	ns := ix.nodes[fn]
	if ord < 0 || ord >= len(ns) {
		return nil, false
	}
	return ns[ord], true
}

// ObjKey returns the canonical key of an abstract object ("" when the
// object is unkeyable).
func (ix *Indexer) ObjKey(o pointsto.ObjID) string {
	if int(o) < 0 || int(o) >= len(ix.objKeys) {
		return ""
	}
	return ix.objKeys[o]
}

// ObjByKey resolves a canonical object key in the current analysis.
func (ix *Indexer) ObjByKey(k string) (pointsto.ObjID, bool) {
	o, ok := ix.objOf[k]
	return o, ok
}

// checkUniqueNames enforces the keying precondition that top-level names
// identify declarations: a duplicate function, global, or struct name
// makes canonical keys ambiguous, so the whole program fails closed.
func (ix *Indexer) checkUniqueNames() {
	seen := make(map[string]bool)
	for _, fn := range ix.info.File.Funcs {
		if seen["f:"+fn.Name] {
			ix.invalid = true
		}
		seen["f:"+fn.Name] = true
	}
	for _, g := range ix.info.File.Globals {
		if seen["g:"+g.Name] {
			ix.invalid = true
		}
		seen["g:"+g.Name] = true
	}
	for _, s := range ix.info.File.Structs {
		if seen["s:"+s.Name] {
			ix.invalid = true
		}
		seen["s:"+s.Name] = true
	}
}

// buildOrdinals assigns every node its (owner declaration, pre-order
// ordinal) coordinate. Function declarations own their whole subtree;
// global initializer expressions are owned by "g:<name>" pseudo-decls.
func (ix *Indexer) buildOrdinals() {
	index := func(owner string, root ast.Node) {
		ast.Inspect(root, func(n ast.Node) bool {
			ix.refOf[n.ID()] = nodeRef{Fn: owner, Ord: len(ix.nodes[owner])}
			ix.nodes[owner] = append(ix.nodes[owner], n)
			return true
		})
	}
	for _, fn := range ix.info.File.Funcs {
		index(fn.Name, fn)
	}
	for _, g := range ix.info.File.Globals {
		index("g:"+g.Name, g)
	}
}

// buildObjKeys computes the canonical key of every abstract object and
// the reverse index. Ambiguous keys (two objects, one name) are dropped
// from both directions, marking the objects unkeyable.
func (ix *Indexer) buildObjKeys() {
	ix.objKeys = make([]string, len(ix.pta.Objects))
	count := make(map[string]int)
	for i, o := range ix.pta.Objects {
		k := ix.canonicalObjKey(o)
		ix.objKeys[i] = k
		if k != "" {
			count[k]++
		}
	}
	for i, k := range ix.objKeys {
		if k == "" {
			continue
		}
		if count[k] > 1 {
			ix.objKeys[i] = ""
			continue
		}
		ix.objOf[k] = pointsto.ObjID(i)
	}

	// Precompute each object's lexicographic rank so fragment hashing can
	// order may-point-to sets with integer compares instead of sorting
	// strings at every node.
	ids := make([]int, 0, len(ix.objKeys))
	for i, k := range ix.objKeys {
		if k != "" {
			ids = append(ids, i)
		}
	}
	sort.Slice(ids, func(a, b int) bool { return ix.objKeys[ids[a]] < ix.objKeys[ids[b]] })
	ix.objRank = make([]int32, len(ix.objKeys))
	for i := range ix.objRank {
		ix.objRank[i] = -1
	}
	for r, id := range ids {
		ix.objRank[id] = int32(r)
	}
}

func (ix *Indexer) canonicalObjKey(o *pointsto.Obj) string {
	switch o.Kind {
	case pointsto.OGlobal:
		return "G#" + o.Var.Name
	case pointsto.OLocal:
		return "L#" + o.Var.Func.Name + "#" + o.Var.Name + "#" + strconv.Itoa(o.Var.Index)
	case pointsto.OParam:
		return "P#" + o.Var.Func.Name + "#" + strconv.Itoa(o.Var.Index) + "#" + o.Var.Name
	case pointsto.OHeap:
		if int(o.Site) < 0 || int(o.Site) >= len(ix.refOf) {
			return ""
		}
		ref := ix.refOf[o.Site]
		if ref.Fn == "" {
			return ""
		}
		return "H#" + ref.Fn + "#" + strconv.Itoa(ref.Ord)
	case pointsto.OField:
		return "F#" + o.Struct + "#" + o.Field
	case pointsto.OFunc:
		return "FN#" + o.Fn.Name
	case pointsto.OStr:
		return "S#" + o.Str
	}
	return ""
}

// declPrint renders one declaration canonically (whitespace- and
// position-independent).
func declPrint(d ast.Decl) string {
	return ast.Print(&ast.File{Decls: []ast.Decl{d}})
}

// contentHash is the canonical-source component of a function's key.
func contentHash(fn *types.FuncInfo) [sha256.Size]byte {
	return sha256.Sum256(append([]byte("src\x00"), []byte(declPrint(fn.Decl))...))
}

// preludeHash covers the declarations outside the function body the
// summary can depend on: every struct layout, plus the printed
// declarations of the globals the function names. Referenced-only global
// coverage keeps unrelated global edits out of the key (and lets
// context-free functions share keys across a batch corpus); struct edits
// invalidate broadly, which is the fail-closed direction.
func (ix *Indexer) preludeHash(fn *types.FuncInfo, structs []byte) [sha256.Size]byte {
	h := sha256.New()
	h.Write([]byte("prelude\x00"))
	h.Write(structs)

	var globals []string
	seen := make(map[string]bool)
	ast.Inspect(fn.Decl, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		o := ix.info.Uses[id.ID()]
		if o == nil || o.Kind != types.ObjGlobal || seen[o.Name] {
			return true
		}
		seen[o.Name] = true
		if vd, ok := o.Decl.(*ast.VarDecl); ok {
			// globalPrint is populated before hashing starts and read-only
			// here (preludeHash runs on concurrent workers).
			p, cached := ix.globalPrint[o.Name]
			if !cached {
				p = declPrint(vd)
			}
			globals = append(globals, p)
		}
		return true
	})
	sort.Strings(globals)
	for _, g := range globals {
		h.Write([]byte(g))
		h.Write([]byte{0})
	}
	var out [sha256.Size]byte
	h.Sum(out[:0])
	return out
}

// fragmentHash digests, node by node in ordinal order, everything the
// RELAY walk reads about this function from the semantic analyses:
// expression types, identifier bindings, may-point-to sets (as canonical
// object keys), and call/spawn target resolution. Two parses with equal
// fragments resolve the function identically, so the cached summary is
// exact. ok is false when any touched object is unkeyable.
func (ix *Indexer) fragmentHash(fn *types.FuncInfo, buf *bytes.Buffer) ([sha256.Size]byte, bool) {
	buf.Reset()
	buf.WriteString("frag\x00")
	ok := true

	var scratch [24]byte
	writeInt := func(v int) { buf.Write(strconv.AppendInt(scratch[:0], int64(v), 10)) }

	writeObjs := func(ids []pointsto.ObjID) {
		// Lexicographic order: ObjID order can permute across parses for
		// an unchanged function, canonical keys cannot. The precomputed
		// rank realizes that order with integer compares.
		sorted := scratchIDs(ids)
		sort.Slice(sorted, func(a, b int) bool { return ix.objRank[sorted[a]] < ix.objRank[sorted[b]] })
		for _, o := range sorted {
			if ix.objRank[o] < 0 {
				ok = false
			}
			buf.WriteString(ix.objKeys[o])
			buf.WriteByte(1)
		}
	}

	for ord, n := range ix.nodes[fn.Name] {
		buf.WriteByte('|')
		writeInt(ord)
		if e, isExpr := n.(ast.Expr); isExpr {
			if t := ix.info.Types[e.ID()]; t != nil {
				// typeStr is populated before hashing starts and read-only
				// here (fragmentHash runs on concurrent workers).
				ts, cached := ix.typeStr[t]
				if !cached {
					ts = t.String()
				}
				buf.WriteString("t:")
				buf.WriteString(ts)
			}
		}
		if id, isIdent := n.(*ast.Ident); isIdent {
			if o := ix.info.Uses[id.ID()]; o != nil {
				// A global's Index is its file position — adding an unrelated
				// global would shift it; the G#name key already identifies it.
				slot := o.Index
				if o.Kind == types.ObjGlobal {
					slot = -1
				}
				buf.WriteString("u:")
				writeInt(int(o.Kind))
				buf.WriteByte(',')
				writeInt(slot)
				if o.AddrTaken {
					buf.WriteString(",true,")
				} else {
					buf.WriteString(",false,")
				}
				writeInt(int(o.Builtin))
				buf.WriteByte(';')
				switch o.Kind {
				case types.ObjGlobal, types.ObjLocal, types.ObjParam:
					if oid, has := ix.pta.VarObjID(o); has {
						writeObjs([]pointsto.ObjID{oid})
					}
				}
			}
		}
		if objs := ix.pta.ObjectsOf(n.ID()); len(objs) > 0 {
			buf.WriteString("pts:")
			writeObjs(objs)
		}
		if target := ix.info.CallTargets[n.ID()]; target != nil {
			buf.WriteString("call:")
			buf.WriteString(target.Name)
			buf.WriteByte(',')
			writeInt(int(target.Kind))
			buf.WriteByte(',')
			writeInt(int(target.Builtin))
			buf.WriteByte(';')
		}
		if callees := ix.pta.CallTargets[n.ID()]; len(callees) > 0 {
			buf.WriteString("icall:")
			writeNames(buf, callees)
		}
		if spawns := ix.pta.SpawnTargets[n.ID()]; len(spawns) > 0 {
			buf.WriteString("spawn:")
			writeNames(buf, spawns)
		}
	}
	return sha256.Sum256(buf.Bytes()), ok
}

// scratchIDs copies a may-point-to set so sorting does not mutate the
// analysis's slice.
func scratchIDs(ids []pointsto.ObjID) []pointsto.ObjID {
	out := make([]pointsto.ObjID, len(ids))
	copy(out, ids)
	return out
}

// writeNames writes function names in lexicographic order (resolution
// order follows ObjIDs, which are not parse-stable).
func writeNames(buf *bytes.Buffer, fns []*types.FuncInfo) {
	names := make([]string, len(fns))
	for i, f := range fns {
		names[i] = f.Name
	}
	sort.Strings(names)
	for _, n := range names {
		buf.WriteString(n)
		buf.WriteByte(1)
	}
}

// computeKeys derives per-SCC and per-function keys bottom-up over the
// callgraph condensation. A function's key transitively embeds its callee
// SCCs' keys, so key equality implies the entire callee cone is
// unchanged — the property that makes "reuse every clean summary" sound.
func (ix *Indexer) computeKeys(workers int) {
	sccKey := make([]Key, len(ix.cg.SCCs))
	sccOK := make([]bool, len(ix.cg.SCCs))
	structs := ix.structsPrint()

	// Memoize sequentially everything the hashers read, so the maps are
	// read-only once workers start: the canonical prints of all global
	// declarations and the rendering of every expression type.
	for _, g := range ix.info.File.Globals {
		ix.globalPrint[g.Name] = declPrint(g)
	}
	for _, t := range ix.info.Types {
		if t == nil {
			continue
		}
		if _, cached := ix.typeStr[t]; !cached {
			ix.typeStr[t] = t.String()
		}
	}

	// The per-function content/prelude/fragment hashes are independent of
	// each other and of the SCC structure; fan them over the worker count.
	// Keys stay worker-count independent because the combination below is
	// sequential and bottom-up.
	fns := ix.info.FuncList
	type fnHashes struct {
		content, prelude, fragment [sha256.Size]byte
		ok                         bool
	}
	hs := make([]fnHashes, len(fns))
	hashFn := func(i int, buf *bytes.Buffer) {
		hs[i].content = contentHash(fns[i])
		hs[i].prelude = ix.preludeHash(fns[i], structs)
		hs[i].fragment, hs[i].ok = ix.fragmentHash(fns[i], buf)
	}
	if workers > len(fns) {
		workers = len(fns)
	}
	if workers > 1 {
		var next atomic.Int64
		next.Store(-1)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				var buf bytes.Buffer
				for {
					i := int(next.Add(1))
					if i >= len(fns) {
						return
					}
					hashFn(i, &buf)
				}
			}()
		}
		wg.Wait()
	} else {
		var buf bytes.Buffer
		for i := range fns {
			hashFn(i, &buf)
		}
	}
	hashOf := make(map[string]*fnHashes, len(fns))
	for i, fn := range fns {
		hashOf[fn.Name] = &hs[i]
	}

	for i, scc := range ix.cg.SCCs {
		ok := !ix.invalid
		h := sha256.New()
		h.Write([]byte("scc\x00"))
		for _, fn := range scc { // name-sorted within the SCC: deterministic
			fh := hashOf[fn.Name]
			if !fh.ok {
				ok = false
			}
			h.Write([]byte(fn.Name))
			h.Write([]byte{0})
			h.Write(fh.content[:])
			h.Write(fh.prelude[:])
			h.Write(fh.fragment[:])
		}

		// Callee SCC keys, deduplicated and byte-sorted: SCC indexes shift
		// when unrelated declarations move, key bytes do not.
		var callees [][]byte
		calleeSeen := make(map[int]bool)
		for _, fn := range scc {
			for _, callee := range ix.cg.CalleesOf(fn) {
				j := ix.cg.SCCOf(callee)
				if j == i || calleeSeen[j] {
					continue
				}
				calleeSeen[j] = true
				if !sccOK[j] {
					ok = false
				}
				callees = append(callees, sccKey[j][:])
			}
		}
		sort.Slice(callees, func(a, b int) bool { return bytes.Compare(callees[a], callees[b]) < 0 })
		for _, ck := range callees {
			h.Write(ck)
		}
		h.Sum(sccKey[i][:0])
		sccOK[i] = ok

		for _, fn := range scc {
			ix.keyable[fn.Name] = ok
			if ok {
				fh := sha256.New()
				fh.Write([]byte("fn\x00"))
				fh.Write(sccKey[i][:])
				fh.Write([]byte(fn.Name))
				var k Key
				fh.Sum(k[:0])
				ix.funcKey[fn.Name] = k
			}
		}
	}
}

// structsPrint renders all struct declarations in file order; every
// function's prelude includes it (struct layout edits invalidate broadly,
// fail-closed).
func (ix *Indexer) structsPrint() []byte {
	var buf bytes.Buffer
	for _, s := range ix.info.File.Structs {
		buf.WriteString(declPrint(s))
		buf.WriteByte(0)
	}
	return buf.Bytes()
}
