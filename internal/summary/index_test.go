package summary

import (
	"strings"
	"testing"

	"repro/internal/callgraph"
	"repro/internal/minic/parser"
	"repro/internal/minic/types"
	"repro/internal/pointsto"
)

const indexSrc = `
int g;
int m;
int buf[8];

void leaf(int x) { g = g + x; }

void helper(int n) {
    lock(&m);
    leaf(n);
    unlock(&m);
}

void worker(int id) {
    helper(id);
    buf[id] = id;
}

int main(void) {
    int t = spawn(worker, 1);
    helper(0);
    join(t);
    return g;
}
`

func buildIndex(t *testing.T, src string) *Indexer {
	t.Helper()
	file, err := parser.Parse("idx", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := types.Check(file)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	pta := pointsto.Analyze(info)
	cg := callgraph.Build(info, pta)
	return NewIndexer(info, pta, cg)
}

func TestIndexerKeysEveryFunction(t *testing.T) {
	ix := buildIndex(t, indexSrc)
	if !ix.Valid() {
		t.Fatal("valid program indexed as invalid")
	}
	for _, fn := range []string{"leaf", "helper", "worker", "main"} {
		if !ix.Keyable(fn) {
			t.Errorf("%s not keyable", fn)
		}
		if _, ok := ix.FuncKey(fn); !ok {
			t.Errorf("%s has no key", fn)
		}
	}
	if _, ok := ix.FuncKey("missing"); ok {
		t.Error("key for undeclared function")
	}
}

// Whitespace and comment shifts must not change any key: keys hash the
// canonical print, not the source text.
func TestIndexerWhitespaceInvariant(t *testing.T) {
	a := buildIndex(t, indexSrc)
	b := buildIndex(t, "\n\n"+strings.ReplaceAll(indexSrc, "    ", "\t"))
	for _, fn := range []string{"leaf", "helper", "worker", "main"} {
		ka, _ := a.FuncKey(fn)
		kb, _ := b.FuncKey(fn)
		if ka != kb {
			t.Errorf("%s key changed under reformatting", fn)
		}
	}
	if a.ProgramKey() != b.ProgramKey() {
		t.Error("program key changed under reformatting")
	}
}

// Editing a leaf dirties exactly the leaf and its transitive callers;
// spawn edges do not propagate (the spawner's summary does not include
// the spawned body).
func TestIndexerEditCone(t *testing.T) {
	a := buildIndex(t, indexSrc)
	b := buildIndex(t, strings.Replace(indexSrc, "g = g + x;", "g = g + x + 1;", 1))
	changed := map[string]bool{"leaf": true, "helper": true, "worker": true, "main": true}
	for fn, want := range changed {
		ka, _ := a.FuncKey(fn)
		kb, _ := b.FuncKey(fn)
		if (ka != kb) != want {
			t.Errorf("%s: key changed=%v, want %v", fn, ka != kb, want)
		}
	}

	// Editing the spawned worker's own access must NOT dirty main: the
	// spawn edge is excluded from summary composition.
	c := buildIndex(t, strings.Replace(indexSrc, "buf[id] = id;", "buf[id] = id + 1;", 1))
	for fn, want := range map[string]bool{"leaf": false, "helper": false, "worker": true, "main": false} {
		ka, _ := a.FuncKey(fn)
		kc, _ := c.FuncKey(fn)
		if (ka != kc) != want {
			t.Errorf("spawn cone %s: key changed=%v, want %v", fn, ka != kc, want)
		}
	}
	if a.ProgramKey() == c.ProgramKey() {
		t.Error("program key unchanged under semantic edit")
	}
}

// A referenced global's declaration is part of a function's prelude; an
// unreferenced new global is not.
func TestIndexerGlobalPrelude(t *testing.T) {
	a := buildIndex(t, indexSrc)
	// Change g's initializer: every function naming g must change.
	b := buildIndex(t, strings.Replace(indexSrc, "int g;", "int g = 3;", 1))
	if ka, _ := a.FuncKey("leaf"); func() Key { k, _ := b.FuncKey("leaf"); return k }() == ka {
		t.Error("leaf key unchanged although its referenced global changed")
	}
	// Append an unreferenced global: no keys change.
	c := buildIndex(t, indexSrc+"\nint unused_extra;\n")
	for _, fn := range []string{"leaf", "helper", "worker", "main"} {
		ka, _ := a.FuncKey(fn)
		kc, _ := c.FuncKey(fn)
		if ka != kc {
			t.Errorf("%s key changed when an unreferenced global was added", fn)
		}
	}
}

func TestIndexerNodeRefRoundTrip(t *testing.T) {
	ix := buildIndex(t, indexSrc)
	info := ix.Info()
	for _, fi := range info.FuncList {
		fn, ord, ok := ix.NodeRef(fi.Decl.ID())
		if !ok || fn != fi.Name || ord != 0 {
			t.Fatalf("%s decl ref = (%s,%d,%v), want (%s,0,true)", fi.Name, fn, ord, ok, fi.Name)
		}
		n, ok := ix.NodeAt(fn, ord)
		if !ok || n.ID() != fi.Decl.ID() {
			t.Fatalf("%s decl did not round-trip", fi.Name)
		}
	}
	if _, ok := ix.NodeAt("leaf", 1<<20); ok {
		t.Error("out-of-range ordinal resolved")
	}
}

func TestIndexerCanonicalObjectKeys(t *testing.T) {
	ix := buildIndex(t, indexSrc)
	pta := ixPTA(t, ix)
	seen := make(map[string]bool)
	for i, o := range pta.Objects {
		k := ix.ObjKey(pointsto.ObjID(i))
		if k == "" {
			t.Errorf("object %d (%v) unkeyable", i, o.Kind)
			continue
		}
		if seen[k] {
			t.Errorf("duplicate canonical key %q", k)
		}
		seen[k] = true
		back, ok := ix.ObjByKey(k)
		if !ok || back != pointsto.ObjID(i) {
			t.Errorf("key %q did not round-trip", k)
		}
	}
	for _, want := range []string{"G#g", "G#m", "G#buf"} {
		if !seen[want] {
			t.Errorf("missing canonical key %q (have %v)", want, seen)
		}
	}
}

// ixPTA re-derives the analysis the indexer was built over (test helper:
// the indexer does not expose it).
func ixPTA(t *testing.T, ix *Indexer) *pointsto.Analysis {
	t.Helper()
	return pointsto.Analyze(ix.Info())
}
