package summary

import "sync"

// Store is a concurrency-safe, content-addressed map from per-function
// Keys to portable analysis artifacts. One Store can back any number of
// programs — racecheck's batch mode points a whole corpus at a single
// store, so functions whose keys coincide across programs are analyzed
// once.
//
// Artifacts handed to Put and returned by Get are shared and must be
// treated as immutable; the relay decoder copies what it rehydrates.
//
// A Store value is a *handle* onto shared storage. View derives a
// tenant-namespaced handle onto the same underlying map: every key a
// view reads or writes is first rewritten through DeriveKey with a
// tenant label, so two tenants submitting byte-identical programs each
// get full within-tenant reuse while never colliding on — or even
// observing — each other's entries. Hit/miss/put accounting is kept per
// handle, which is what gives the service layer its per-tenant cache
// ratios; capacity, eviction and the resident-entry count are global to
// the shared storage.
//
// The default store is unbounded, which keeps hit/miss accounting a pure
// function of the load sequence (no eviction nondeterminism); a capacity
// can be opted into with NewStoreCap, evicting the oldest insertion first
// (deterministic FIFO) across all tenants.
type Store struct {
	inner *storeInner
	label string // tenant namespace; "" = root (keys pass through unchanged)

	// Per-handle counters, guarded by inner.mu.
	hits      int64
	misses    int64
	puts      int64
	mhpHits   int64
	mhpMisses int64
}

// storeInner is the storage shared by a root store and all its views.
type storeInner struct {
	mu  sync.Mutex
	cap int

	funcs map[Key]*FuncSummary
	order []Key // insertion order, for deterministic FIFO eviction
	mhp   map[Key]*MHPFacts

	evictions int64
}

// StoreStats is a snapshot of one handle's counters plus the global
// residency of the shared storage.
type StoreStats struct {
	Hits      int64 // function-summary lookups that found an entry
	Misses    int64 // function-summary lookups that did not
	Puts      int64 // function summaries inserted
	Evictions int64 // entries dropped by the capacity bound (global)
	Entries   int64 // function summaries currently resident (global)
	MHPHits   int64 // MHP-fact lookups that found an entry
	MHPMisses int64 // MHP-fact lookups that did not
}

// NewStore returns an empty, unbounded store.
func NewStore() *Store {
	return &Store{inner: &storeInner{funcs: make(map[Key]*FuncSummary), mhp: make(map[Key]*MHPFacts)}}
}

// NewStoreCap returns a store that holds at most n function summaries
// (n <= 0 means unbounded), evicting the oldest insertion when full.
func NewStoreCap(n int) *Store {
	s := NewStore()
	s.inner.cap = n
	return s
}

// View returns a tenant-namespaced handle onto the same underlying
// storage: keys are rewritten through DeriveKey(k, "tenant\x00"+label),
// so views of distinct labels can never collide with each other or with
// the root namespace, and a view of the same label always addresses the
// same entries. The returned handle has fresh counters — its Stats are
// the tenant's own traffic. View("") returns a fresh-countered handle
// onto the root namespace.
func (s *Store) View(label string) *Store {
	v := &Store{inner: s.inner}
	if label != "" {
		v.label = "tenant\x00" + label
	}
	return v
}

// Label returns the tenant label this handle namespaces keys under
// ("" for the root namespace).
func (s *Store) Label() string {
	const prefix = "tenant\x00"
	if len(s.label) > len(prefix) {
		return s.label[len(prefix):]
	}
	return ""
}

// key maps a caller key into this handle's namespace.
func (s *Store) key(k Key) Key {
	if s.label == "" {
		return k
	}
	return DeriveKey(k, s.label)
}

// Get returns the function summary stored under k, if any.
func (s *Store) Get(k Key) (*FuncSummary, bool) {
	k = s.key(k)
	s.inner.mu.Lock()
	defer s.inner.mu.Unlock()
	sum, ok := s.inner.funcs[k]
	if ok {
		s.hits++
	} else {
		s.misses++
	}
	return sum, ok
}

// Put stores a function summary under k. Re-putting an existing key
// refreshes the value without consuming capacity.
func (s *Store) Put(k Key, sum *FuncSummary) {
	k = s.key(k)
	in := s.inner
	in.mu.Lock()
	defer in.mu.Unlock()
	s.puts++
	if _, exists := in.funcs[k]; exists {
		in.funcs[k] = sum
		return
	}
	if in.cap > 0 && len(in.funcs) >= in.cap {
		// FIFO: drop insertion-order entries until there is room. Keys
		// already re-put (and so refreshed) were never re-appended, so the
		// order slice can hold stale keys; skip those.
		for len(in.order) > 0 && len(in.funcs) >= in.cap {
			victim := in.order[0]
			in.order = in.order[1:]
			if _, ok := in.funcs[victim]; ok {
				delete(in.funcs, victim)
				in.evictions++
			}
		}
	}
	in.funcs[k] = sum
	in.order = append(in.order, k)
}

// GetMHP returns the MHP facts stored under the program key k, if any.
func (s *Store) GetMHP(k Key) (*MHPFacts, bool) {
	k = s.key(k)
	s.inner.mu.Lock()
	defer s.inner.mu.Unlock()
	f, ok := s.inner.mhp[k]
	if ok {
		s.mhpHits++
	} else {
		s.mhpMisses++
	}
	return f, ok
}

// PutMHP stores MHP facts under the program key k. MHP facts are whole-
// program and few; they are not subject to the capacity bound.
func (s *Store) PutMHP(k Key, f *MHPFacts) {
	k = s.key(k)
	s.inner.mu.Lock()
	defer s.inner.mu.Unlock()
	s.inner.mhp[k] = f
}

// Stats returns a snapshot of this handle's counters (global residency
// and evictions are shared across handles).
func (s *Store) Stats() StoreStats {
	s.inner.mu.Lock()
	defer s.inner.mu.Unlock()
	return StoreStats{
		Hits:      s.hits,
		Misses:    s.misses,
		Puts:      s.puts,
		Evictions: s.inner.evictions,
		Entries:   int64(len(s.inner.funcs)),
		MHPHits:   s.mhpHits,
		MHPMisses: s.mhpMisses,
	}
}
