package summary

import "sync"

// Store is a concurrency-safe, content-addressed map from per-function
// Keys to portable analysis artifacts. One Store can back any number of
// programs — racecheck's batch mode points a whole corpus at a single
// store, so functions whose keys coincide across programs are analyzed
// once.
//
// Artifacts handed to Put and returned by Get are shared and must be
// treated as immutable; the relay decoder copies what it rehydrates.
//
// The default store is unbounded, which keeps hit/miss accounting a pure
// function of the load sequence (no eviction nondeterminism); a capacity
// can be opted into with NewStoreCap, evicting the oldest insertion first
// (deterministic FIFO).
type Store struct {
	mu  sync.Mutex
	cap int

	funcs map[Key]*FuncSummary
	order []Key // insertion order, for deterministic FIFO eviction
	mhp   map[Key]*MHPFacts

	hits      int64
	misses    int64
	puts      int64
	evictions int64
	mhpHits   int64
	mhpMisses int64
}

// StoreStats is a snapshot of the store's counters.
type StoreStats struct {
	Hits      int64 // function-summary lookups that found an entry
	Misses    int64 // function-summary lookups that did not
	Puts      int64 // function summaries inserted
	Evictions int64 // entries dropped by the capacity bound
	Entries   int64 // function summaries currently resident
	MHPHits   int64 // MHP-fact lookups that found an entry
	MHPMisses int64 // MHP-fact lookups that did not
}

// NewStore returns an empty, unbounded store.
func NewStore() *Store {
	return &Store{funcs: make(map[Key]*FuncSummary), mhp: make(map[Key]*MHPFacts)}
}

// NewStoreCap returns a store that holds at most n function summaries
// (n <= 0 means unbounded), evicting the oldest insertion when full.
func NewStoreCap(n int) *Store {
	s := NewStore()
	s.cap = n
	return s
}

// Get returns the function summary stored under k, if any.
func (s *Store) Get(k Key) (*FuncSummary, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sum, ok := s.funcs[k]
	if ok {
		s.hits++
	} else {
		s.misses++
	}
	return sum, ok
}

// Put stores a function summary under k. Re-putting an existing key
// refreshes the value without consuming capacity.
func (s *Store) Put(k Key, sum *FuncSummary) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.puts++
	if _, exists := s.funcs[k]; exists {
		s.funcs[k] = sum
		return
	}
	if s.cap > 0 && len(s.funcs) >= s.cap {
		// FIFO: drop insertion-order entries until there is room. Keys
		// already re-put (and so refreshed) were never re-appended, so the
		// order slice can hold stale keys; skip those.
		for len(s.order) > 0 && len(s.funcs) >= s.cap {
			victim := s.order[0]
			s.order = s.order[1:]
			if _, ok := s.funcs[victim]; ok {
				delete(s.funcs, victim)
				s.evictions++
			}
		}
	}
	s.funcs[k] = sum
	s.order = append(s.order, k)
}

// GetMHP returns the MHP facts stored under the program key k, if any.
func (s *Store) GetMHP(k Key) (*MHPFacts, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	f, ok := s.mhp[k]
	if ok {
		s.mhpHits++
	} else {
		s.mhpMisses++
	}
	return f, ok
}

// PutMHP stores MHP facts under the program key k. MHP facts are whole-
// program and few; they are not subject to the capacity bound.
func (s *Store) PutMHP(k Key, f *MHPFacts) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mhp[k] = f
}

// Stats returns a snapshot of the store counters.
func (s *Store) Stats() StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return StoreStats{
		Hits:      s.hits,
		Misses:    s.misses,
		Puts:      s.puts,
		Evictions: s.evictions,
		Entries:   int64(len(s.funcs)),
		MHPHits:   s.mhpHits,
		MHPMisses: s.mhpMisses,
	}
}
