package summary

import (
	"crypto/sha256"
	"fmt"
	"sync"
	"testing"
)

func key(s string) Key { return Key(sha256.Sum256([]byte(s))) }

func TestStoreHitMissCounters(t *testing.T) {
	s := NewStore()
	if _, ok := s.Get(key("a")); ok {
		t.Fatal("empty store hit")
	}
	s.Put(key("a"), &FuncSummary{Fn: "a"})
	got, ok := s.Get(key("a"))
	if !ok || got.Fn != "a" {
		t.Fatalf("Get after Put = %v, %v", got, ok)
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Puts != 1 || st.Entries != 1 || st.Evictions != 0 {
		t.Errorf("stats = %+v, want 1 hit / 1 miss / 1 put / 1 entry", st)
	}
}

func TestStoreFIFOEviction(t *testing.T) {
	s := NewStoreCap(2)
	s.Put(key("a"), &FuncSummary{Fn: "a"})
	s.Put(key("b"), &FuncSummary{Fn: "b"})
	// Re-putting an existing key refreshes without consuming capacity.
	s.Put(key("a"), &FuncSummary{Fn: "a2"})
	if got, _ := s.Get(key("a")); got == nil || got.Fn != "a2" {
		t.Fatalf("re-put did not refresh: %v", got)
	}
	// Third distinct key evicts the oldest insertion (a).
	s.Put(key("c"), &FuncSummary{Fn: "c"})
	if _, ok := s.Get(key("a")); ok {
		t.Error("oldest entry survived eviction")
	}
	for _, k := range []string{"b", "c"} {
		if _, ok := s.Get(key(k)); !ok {
			t.Errorf("entry %q evicted, want resident", k)
		}
	}
	st := s.Stats()
	if st.Evictions != 1 || st.Entries != 2 {
		t.Errorf("stats = %+v, want 1 eviction / 2 entries", st)
	}
}

func TestStoreUnboundedByDefault(t *testing.T) {
	s := NewStore()
	for i := 0; i < 1000; i++ {
		s.Put(key(fmt.Sprintf("k%d", i)), &FuncSummary{})
	}
	if st := s.Stats(); st.Evictions != 0 || st.Entries != 1000 {
		t.Errorf("unbounded store evicted: %+v", st)
	}
}

func TestStoreMHPFacts(t *testing.T) {
	s := NewStore()
	if _, ok := s.GetMHP(key("p")); ok {
		t.Fatal("empty MHP hit")
	}
	s.PutMHP(key("p"), &MHPFacts{Pairs: []FactPair{{FnA: "f", FnB: "g", Pruned: true, Reason: "pre-fork"}}})
	f, ok := s.GetMHP(key("p"))
	if !ok || len(f.Pairs) != 1 || !f.Pairs[0].Pruned {
		t.Fatalf("GetMHP = %+v, %v", f, ok)
	}
	st := s.Stats()
	if st.MHPHits != 1 || st.MHPMisses != 1 {
		t.Errorf("MHP counters = %+v, want 1/1", st)
	}
}

func TestStoreConcurrentAccess(t *testing.T) {
	s := NewStoreCap(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := key(fmt.Sprintf("%d-%d", g, i%32))
				s.Put(k, &FuncSummary{})
				s.Get(k)
			}
		}()
	}
	wg.Wait()
	st := s.Stats()
	if st.Puts != 1600 || st.Hits+st.Misses != 1600 {
		t.Errorf("lost updates under concurrency: %+v", st)
	}
}

// TestViewIsolation is the multi-tenant contract: views of distinct
// labels share storage but can never observe each other's entries,
// while a view of the same label always addresses the same ones.
func TestViewIsolation(t *testing.T) {
	root := NewStore()
	a, b := root.View("alice"), root.View("bob")
	if a.Label() != "alice" || b.Label() != "bob" || root.Label() != "" {
		t.Fatalf("labels = %q/%q/%q", a.Label(), b.Label(), root.Label())
	}

	a.Put(key("f"), &FuncSummary{Fn: "alice-f"})
	if _, ok := b.Get(key("f")); ok {
		t.Fatal("tenant bob observed alice's entry")
	}
	if _, ok := root.Get(key("f")); ok {
		t.Fatal("root namespace observed a tenant entry")
	}
	if got, ok := a.Get(key("f")); !ok || got.Fn != "alice-f" {
		t.Fatalf("alice lost her own entry: %v, %v", got, ok)
	}
	// A second handle with the same label addresses the same entries.
	if got, ok := root.View("alice").Get(key("f")); !ok || got.Fn != "alice-f" {
		t.Fatalf("same-label view missed: %v, %v", got, ok)
	}

	// MHP facts are namespaced the same way.
	a.PutMHP(key("p"), &MHPFacts{})
	if _, ok := b.GetMHP(key("p")); ok {
		t.Fatal("tenant bob observed alice's MHP facts")
	}
	if _, ok := a.GetMHP(key("p")); !ok {
		t.Fatal("alice lost her own MHP facts")
	}
}

// TestViewPerHandleCounters checks that hit/miss accounting is per
// handle (the service's per-tenant ratios) while residency is global.
func TestViewPerHandleCounters(t *testing.T) {
	root := NewStore()
	a, b := root.View("alice"), root.View("bob")
	a.Put(key("f"), &FuncSummary{})
	a.Get(key("f"))
	a.Get(key("g"))
	b.Get(key("f"))

	sa, sb := a.Stats(), b.Stats()
	if sa.Hits != 1 || sa.Misses != 1 || sa.Puts != 1 {
		t.Errorf("alice stats = %+v, want 1 hit / 1 miss / 1 put", sa)
	}
	if sb.Hits != 0 || sb.Misses != 1 || sb.Puts != 0 {
		t.Errorf("bob stats = %+v, want 0 hits / 1 miss / 0 puts", sb)
	}
	if sa.Entries != 1 || sb.Entries != 1 {
		t.Errorf("global residency differs across handles: %d vs %d", sa.Entries, sb.Entries)
	}
	if rs := root.Stats(); rs.Hits != 0 || rs.Misses != 0 || rs.Entries != 1 {
		t.Errorf("root stats = %+v, want untouched counters, 1 entry", rs)
	}
}

func TestViewEmptyLabelIsRootNamespace(t *testing.T) {
	root := NewStore()
	root.Put(key("f"), &FuncSummary{Fn: "root-f"})
	v := root.View("")
	if got, ok := v.Get(key("f")); !ok || got.Fn != "root-f" {
		t.Fatalf("View(\"\") missed root entry: %v, %v", got, ok)
	}
	if st := root.Stats(); st.Hits != 0 {
		t.Errorf("View(\"\") traffic leaked into root counters: %+v", st)
	}
}

// TestViewConcurrentTenants hammers two tenant views from many
// goroutines under -race: storage is shared, counters are per handle,
// and no cross-tenant entry ever appears.
func TestViewConcurrentTenants(t *testing.T) {
	root := NewStore()
	const workers, n = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		v := root.View([]string{"alice", "bob"}[w%2])
		wg.Add(1)
		go func(v *Store, tenant string) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				k := key(fmt.Sprintf("f%d", i))
				v.Put(k, &FuncSummary{Fn: tenant})
				if got, ok := v.Get(k); !ok || got.Fn != tenant {
					t.Errorf("tenant %s read %v, %v", tenant, got, ok)
					return
				}
			}
		}(v, v.Label())
	}
	wg.Wait()
	if st := root.Stats(); st.Entries != 2*n {
		t.Errorf("entries = %d, want %d (two disjoint tenant namespaces)", st.Entries, 2*n)
	}
}
