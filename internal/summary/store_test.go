package summary

import (
	"crypto/sha256"
	"fmt"
	"sync"
	"testing"
)

func key(s string) Key { return Key(sha256.Sum256([]byte(s))) }

func TestStoreHitMissCounters(t *testing.T) {
	s := NewStore()
	if _, ok := s.Get(key("a")); ok {
		t.Fatal("empty store hit")
	}
	s.Put(key("a"), &FuncSummary{Fn: "a"})
	got, ok := s.Get(key("a"))
	if !ok || got.Fn != "a" {
		t.Fatalf("Get after Put = %v, %v", got, ok)
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Puts != 1 || st.Entries != 1 || st.Evictions != 0 {
		t.Errorf("stats = %+v, want 1 hit / 1 miss / 1 put / 1 entry", st)
	}
}

func TestStoreFIFOEviction(t *testing.T) {
	s := NewStoreCap(2)
	s.Put(key("a"), &FuncSummary{Fn: "a"})
	s.Put(key("b"), &FuncSummary{Fn: "b"})
	// Re-putting an existing key refreshes without consuming capacity.
	s.Put(key("a"), &FuncSummary{Fn: "a2"})
	if got, _ := s.Get(key("a")); got == nil || got.Fn != "a2" {
		t.Fatalf("re-put did not refresh: %v", got)
	}
	// Third distinct key evicts the oldest insertion (a).
	s.Put(key("c"), &FuncSummary{Fn: "c"})
	if _, ok := s.Get(key("a")); ok {
		t.Error("oldest entry survived eviction")
	}
	for _, k := range []string{"b", "c"} {
		if _, ok := s.Get(key(k)); !ok {
			t.Errorf("entry %q evicted, want resident", k)
		}
	}
	st := s.Stats()
	if st.Evictions != 1 || st.Entries != 2 {
		t.Errorf("stats = %+v, want 1 eviction / 2 entries", st)
	}
}

func TestStoreUnboundedByDefault(t *testing.T) {
	s := NewStore()
	for i := 0; i < 1000; i++ {
		s.Put(key(fmt.Sprintf("k%d", i)), &FuncSummary{})
	}
	if st := s.Stats(); st.Evictions != 0 || st.Entries != 1000 {
		t.Errorf("unbounded store evicted: %+v", st)
	}
}

func TestStoreMHPFacts(t *testing.T) {
	s := NewStore()
	if _, ok := s.GetMHP(key("p")); ok {
		t.Fatal("empty MHP hit")
	}
	s.PutMHP(key("p"), &MHPFacts{Pairs: []FactPair{{FnA: "f", FnB: "g", Pruned: true, Reason: "pre-fork"}}})
	f, ok := s.GetMHP(key("p"))
	if !ok || len(f.Pairs) != 1 || !f.Pairs[0].Pruned {
		t.Fatalf("GetMHP = %+v, %v", f, ok)
	}
	st := s.Stats()
	if st.MHPHits != 1 || st.MHPMisses != 1 {
		t.Errorf("MHP counters = %+v, want 1/1", st)
	}
}

func TestStoreConcurrentAccess(t *testing.T) {
	s := NewStoreCap(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := key(fmt.Sprintf("%d-%d", g, i%32))
				s.Put(k, &FuncSummary{})
				s.Get(k)
			}
		}()
	}
	wg.Wait()
	st := s.Stats()
	if st.Puts != 1600 || st.Hits+st.Misses != 1600 {
		t.Errorf("lost updates under concurrency: %+v", st)
	}
}
