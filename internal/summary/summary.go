// Package summary implements the content-addressed per-function artifact
// store behind Chimera's incremental static analysis.
//
// RELAY's bottom-up composition makes per-function keying natural: a
// function summary is a pure function of the function's source, the
// summaries of its callees, and the way the points-to world resolves the
// function's expressions. The package captures exactly those inputs in a
// SHA-256 key per function (Indexer), and maps keys to parse-independent
// ("portable") artifact encodings (Store): RELAY function summaries,
// per-function points-to fragments (folded into the key), and whole-program
// MHP prune facts.
//
// On re-analysis the dirty SCC cone falls out of the keying for free:
// a caller's key embeds its callee SCCs' keys, so editing one function
// changes the keys of exactly that function and its transitive callers —
// everything else hits the store and skips the RELAY walk. Invalidation is
// fail-closed: any keying ambiguity (duplicate declaration names, objects
// the canonical grammar cannot name, decode mismatches against the fresh
// AST) makes the affected functions key-less, which forces recomputation
// and blocks storing — never a stale hit.
//
// Portability is what makes reuse sound across reparses: artifacts never
// mention ast.NodeID, pointsto.ObjID or token.Pos, all of which shift when
// unrelated source moves. Nodes are named by their pre-order ordinal
// within the enclosing declaration, abstract objects by a canonical
// kind-qualified path (G#g, L#fn#x#slot, P#fn#i#x, H#fn#ord, F#s#f, FN#f,
// S#lit), and locks by RELAY's symbolic representatives, which are already
// parse-independent strings.
package summary

import (
	"crypto/sha256"
	"encoding/hex"
)

// Key is a content address: SHA-256 over a function's canonical source,
// its resolution fragment, its referenced declarations, and its callee
// SCCs' keys.
type Key [sha256.Size]byte

// String renders the key in hex for logs and stats.
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// DeriveKey returns a distinct key deterministically derived from k and a
// label. Refinement layers store their whole-program facts under derived
// keys (e.g. "precision", "precision+mhp") so new fact kinds never
// collide with — or change a single byte of — the function summaries and
// MHP facts already stored under the original keys.
func DeriveKey(k Key, label string) Key {
	h := sha256.New()
	h.Write(k[:])
	h.Write([]byte{0})
	h.Write([]byte(label))
	var out Key
	copy(out[:], h.Sum(nil))
	return out
}

// FuncAccess is one portable summary access: the parse-independent image
// of relay's summaryAccess. Node and Stmt are pre-order ordinals within
// Fn's declaration; Objs are canonical abstract-object keys; Plus/Minus
// are RELAY's symbolic lock representatives, portable as-is.
type FuncAccess struct {
	Fn    string // lexical containing function
	Node  int    // ordinal of the lvalue node within Fn's decl
	Stmt  int    // ordinal of the anchor statement within Fn's decl
	Write bool
	Objs  []string
	Plus  []string
	Minus []string
}

// FuncSummary is the portable encoding of one RELAY function summary:
// the guarded accesses in their exact analysis order (order is
// load-bearing — race-pair deduplication keeps the first pair seen, so a
// reordered decode would change which lockset the report shows) plus the
// net lock effect.
type FuncSummary struct {
	Fn       string
	Accesses []FuncAccess
	NetPlus  []string
	NetMinus []string
}

// FactPair is one recorded MHP refinement decision, identified portably
// by the two access nodes' (function, ordinal) coordinates.
type FactPair struct {
	FnA   string
	NodeA int
	FnB   string
	NodeB int

	Pruned bool
	Reason string
}

// MHPFacts is the whole-program MHP artifact: the refinement verdict for
// every pair of the unrefined report, in the report's pair order. Facts
// apply only when the fresh report's pairs match position-for-position
// (fail-closed otherwise).
type MHPFacts struct {
	Pairs []FactPair
}
