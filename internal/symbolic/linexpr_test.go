package symbolic

import (
	"testing"

	"repro/internal/minic/types"
)

func TestLinExprOps(t *testing.T) {
	a := &types.Object{Name: "a"}
	b := &types.Object{Name: "b"}

	l := NewLin(5)
	if !l.IsConst() || l.String() != "5" {
		t.Fatalf("const: %s", l)
	}
	l.Terms[a] = 2
	l.Terms[b] = -1
	if l.IsConst() {
		t.Error("not const with terms")
	}
	if got := l.String(); got != "2*a + -b + 5" {
		t.Errorf("string %q", got)
	}

	m := NewLin(1)
	m.Terms[a] = 3
	l.addScaled(m, 2) // l = 2a - b + 5 + 2(3a + 1) = 8a - b + 7
	if l.Terms[a] != 8 || l.Terms[b] != -1 || l.Const != 7 {
		t.Errorf("addScaled: %s", l)
	}

	l.scale(-1)
	if l.Terms[a] != -8 || l.Const != -7 {
		t.Errorf("scale: %s", l)
	}

	// Terms cancelling to zero are dropped.
	n := NewLin(0)
	n.Terms[a] = 4
	p := NewLin(0)
	p.Terms[a] = -4
	n.addScaled(p, 1)
	if len(n.Terms) != 0 {
		t.Errorf("cancelled term retained: %s", n)
	}

	// Coefficient 1 prints bare; clone is independent.
	q := NewLin(0)
	q.Terms[a] = 1
	if q.String() != "a" {
		t.Errorf("unit coefficient: %q", q.String())
	}
	c := q.clone()
	c.Terms[a] = 9
	if q.Terms[a] != 1 {
		t.Error("clone aliases original")
	}
}

func TestBoundsString(t *testing.T) {
	b := InfBounds(1, nil, "index not affine")
	if got := b.String(); got != "[-INF, +INF] (index not affine)" {
		t.Errorf("inf bounds: %q", got)
	}
}

func TestRangeSentinels(t *testing.T) {
	lo, hi := RangeSentinels()
	if lo >= 0 || hi <= 0 || lo != -hi {
		t.Errorf("sentinels %d %d", lo, hi)
	}
}

func TestSubstExtreme(t *testing.T) {
	v := &types.Object{Name: "v"}
	inv := &types.Object{Name: "n"}
	// l = 3v + n + 1; v in [lo=2, hi=n-1]
	l := NewLin(1)
	l.Terms[v] = 3
	l.Terms[inv] = 1
	lo := NewLin(2)
	hi := NewLin(-1)
	hi.Terms[inv] = 1

	max := substExtreme(l, v, lo, hi, true)
	// max: v -> n-1: 3(n-1) + n + 1 = 4n - 2
	if max.Terms[inv] != 4 || max.Const != -2 {
		t.Errorf("max: %s", max)
	}
	min := substExtreme(l, v, lo, hi, false)
	// min: v -> 2: 6 + n + 1 = n + 7
	if min.Terms[inv] != 1 || min.Const != 7 {
		t.Errorf("min: %s", min)
	}

	// Negative coefficient flips the pick.
	l2 := NewLin(0)
	l2.Terms[v] = -2
	max2 := substExtreme(l2, v, lo, hi, true)
	// max of -2v: v -> lo=2: -4
	if max2.Const != -4 || len(max2.Terms) != 0 {
		t.Errorf("neg max: %s", max2)
	}

	// Variable absent: unchanged.
	l3 := NewLin(9)
	if got := substExtreme(l3, v, lo, hi, true); got.Const != 9 {
		t.Errorf("absent var: %s", got)
	}
}
