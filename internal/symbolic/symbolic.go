// Package symbolic implements the symbolic address-bounds analysis Chimera
// uses to build loop-level weak-locks (paper §5), following Rugina and
// Rinard's approach of deriving symbolic lower/upper bounds for pointer and
// array-index expressions [PLDI 2000 / TOPLAS 2005].
//
// For a racy access inside a loop nest, the analysis derives the range of
// word addresses the access can touch across all iterations, as
//
//	[ base + lo(inv) , base + hi(inv) ]
//
// where base is a loop-invariant lvalue (the array or pointer the access
// indexes) and lo/hi are linear expressions over loop-invariant variables,
// evaluated at run time when the loop-lock is acquired (paper Fig. 4:
// WEAK-LOCK(&rank[0] to &rank[radix-1])).
//
// Induction variables are eliminated innermost-first by substituting the
// extreme of their iteration range according to their coefficient's sign;
// when every quantity is numeric the elimination is cross-checked against
// the exact LP solver (internal/lp), which plays the role lpsolve played in
// the original implementation (paper §6.1).
//
// Imprecision is deliberate and mirrors the paper (§5.2): an index that
// depends on a value computed inside the loop (radix's rank[my_key]) or on
// an unsupported operator (&, |, %, /) yields unbounded [-inf, +inf]
// bounds, and the instrumenter then falls back per §5.3.
package symbolic

import (
	"fmt"
	"math/big"
	"sort"
	"strings"

	"repro/internal/lp"
	"repro/internal/minic/ast"
	"repro/internal/minic/token"
	"repro/internal/minic/types"
	"repro/internal/weaklock"
)

// LinExpr is Const + sum(Coef[v] * value-at-loop-entry(v)).
type LinExpr struct {
	Const int64
	Terms map[*types.Object]int64
}

// NewLin returns the constant linear expression c.
func NewLin(c int64) *LinExpr { return &LinExpr{Const: c, Terms: map[*types.Object]int64{}} }

// clone copies the expression.
func (l *LinExpr) clone() *LinExpr {
	n := NewLin(l.Const)
	for k, v := range l.Terms {
		n.Terms[k] = v
	}
	return n
}

// addScaled adds k*other into l.
func (l *LinExpr) addScaled(other *LinExpr, k int64) {
	l.Const += k * other.Const
	for v, c := range other.Terms {
		l.Terms[v] += k * c
		if l.Terms[v] == 0 {
			delete(l.Terms, v)
		}
	}
}

// scale multiplies l by k.
func (l *LinExpr) scale(k int64) {
	l.Const *= k
	for v := range l.Terms {
		l.Terms[v] *= k
		if l.Terms[v] == 0 {
			delete(l.Terms, v)
		}
	}
}

// IsConst reports whether l has no symbolic terms.
func (l *LinExpr) IsConst() bool { return len(l.Terms) == 0 }

// String renders the expression.
func (l *LinExpr) String() string {
	var parts []string
	var vars []*types.Object
	for v := range l.Terms {
		vars = append(vars, v)
	}
	sort.Slice(vars, func(i, j int) bool { return vars[i].Name < vars[j].Name })
	for _, v := range vars {
		c := l.Terms[v]
		switch c {
		case 1:
			parts = append(parts, v.Name)
		case -1:
			parts = append(parts, "-"+v.Name)
		default:
			parts = append(parts, fmt.Sprintf("%d*%s", c, v.Name))
		}
	}
	if l.Const != 0 || len(parts) == 0 {
		parts = append(parts, fmt.Sprintf("%d", l.Const))
	}
	return strings.Join(parts, " + ")
}

// Bounds is the result for one (loop, access) pair.
type Bounds struct {
	// Access is the racy lvalue node the bounds cover.
	Access ast.NodeID

	// Loop is the loop statement the bounds are valid for (the outermost
	// loop with precise-enough bounds, per paper §5.3).
	Loop ast.Stmt

	// Precise is false when the analysis failed; the range is then
	// conceptually [-inf, +inf].
	Precise bool

	// Base is the loop-invariant base lvalue the range is relative to
	// (an array variable or pointer variable expression in the original
	// tree; the instrumenter clones it).
	Base ast.Expr

	// LoWords/HiWords are word-offset bounds relative to Base's address,
	// as linear expressions over loop-invariant variables.
	LoWords, HiWords *LinExpr

	// Reason records why the bounds are imprecise, for reports.
	Reason string
}

// String renders the bounds in the paper's Figure-4 style.
func (b *Bounds) String() string {
	if !b.Precise {
		return fmt.Sprintf("[-INF, +INF] (%s)", b.Reason)
	}
	base := ast.PrintExpr(b.Base)
	return fmt.Sprintf("[&%s + (%s), &%s + (%s)]", base, b.LoWords, base, b.HiWords)
}

// InfBounds returns an imprecise result.
func InfBounds(access ast.NodeID, loop ast.Stmt, reason string) *Bounds {
	return &Bounds{Access: access, Loop: loop, Precise: false, Reason: reason}
}

// indVar describes one parsed loop induction variable.
type indVar struct {
	obj  *types.Object
	loE  ast.Expr // inclusive lower bound expression
	hiE  ast.Expr // inclusive upper bound expression
	loop ast.Stmt
}

// Analysis holds the per-program context.
type Analysis struct {
	Info *types.Info
}

// New returns an analysis over the checked program.
func New(info *types.Info) *Analysis { return &Analysis{Info: info} }

// AccessBounds derives bounds for the access lval under the loop chain
// (outermost first, all enclosing the access). It tries each loop from the
// outermost inward and returns the bounds for the first loop whose range is
// precise; if none is, it returns imprecise bounds for the innermost loop.
func (a *Analysis) AccessBounds(chain []ast.Stmt, lval ast.Expr) *Bounds {
	if len(chain) == 0 {
		return InfBounds(lval.ID(), nil, "not inside a loop")
	}
	var last *Bounds
	for i := 0; i < len(chain); i++ {
		b := a.boundsForLoop(chain[i], chain[i:], lval)
		if b.Precise {
			return b
		}
		last = b
	}
	last.Loop = chain[len(chain)-1]
	return last
}

// boundsForLoop computes bounds valid for `loop`, with the inner loop chain
// inner (loop itself first).
func (a *Analysis) boundsForLoop(loop ast.Stmt, inner []ast.Stmt, lval ast.Expr) *Bounds {
	mod := a.modifiedVars(loop)

	// Parse every loop header in the chain; each contributes an induction
	// variable with bounds.
	var ivs []*indVar
	ivByObj := make(map[*types.Object]*indVar)
	for _, l := range inner {
		iv, reason := a.parseLoopHeader(l)
		if iv == nil {
			return InfBounds(lval.ID(), loop, reason)
		}
		// The induction variable must not be modified elsewhere in its
		// loop body.
		if a.varAssignedInBody(l, iv.obj) {
			return InfBounds(lval.ID(), loop, fmt.Sprintf("induction variable %s modified in loop body", iv.obj.Name))
		}
		ivs = append(ivs, iv)
		ivByObj[iv.obj] = iv
	}

	env := &linEnv{a: a, mod: mod, ind: ivByObj}

	// Address of the access as base + linear word offset.
	base, off, reason := a.addrOf(lval, env)
	if base == nil {
		return InfBounds(lval.ID(), loop, reason)
	}

	// Bound expressions for each induction variable, linearized in the
	// same environment (they may reference outer induction variables).
	var bounds []ivBound
	for _, iv := range ivs {
		lo := env.lin(iv.loE)
		hi := env.lin(iv.hiE)
		if lo == nil || hi == nil {
			return InfBounds(lval.ID(), loop, fmt.Sprintf("loop bound of %s not affine", iv.obj.Name))
		}
		bounds = append(bounds, ivBound{iv, lo, hi})
	}

	// Eliminate induction variables innermost-first (reverse order): each
	// variable's bound expressions may mention outer induction variables,
	// which are eliminated later.
	lo := off.clone()
	hi := off.clone()
	for i := len(bounds) - 1; i >= 0; i-- {
		b := bounds[i]
		lo = substExtreme(lo, b.iv.obj, b.lo, b.hi, false)
		hi = substExtreme(hi, b.iv.obj, b.lo, b.hi, true)
		if lo == nil || hi == nil {
			return InfBounds(lval.ID(), loop, "nested bound depends on inner variable")
		}
	}
	// No induction variable may survive.
	for _, b := range bounds {
		if _, ok := lo.Terms[b.iv.obj]; ok {
			return InfBounds(lval.ID(), loop, "unresolved induction variable")
		}
		if _, ok := hi.Terms[b.iv.obj]; ok {
			return InfBounds(lval.ID(), loop, "unresolved induction variable")
		}
	}

	res := &Bounds{
		Access: lval.ID(), Loop: loop, Precise: true,
		Base: base, LoWords: lo, HiWords: hi,
	}

	// When everything is numeric, cross-check the elimination against the
	// exact LP solver (the lpsolve role).
	if lo.IsConst() && hi.IsConst() {
		allConst := true
		for _, b := range bounds {
			if !b.lo.IsConst() || !b.hi.IsConst() {
				allConst = false
				break
			}
		}
		if allConst && !a.lpCheck(off, bounds, lo.Const, hi.Const) {
			return InfBounds(lval.ID(), loop, "lp cross-check failed")
		}
	}
	return res
}

// ivBound pairs an induction variable with its linearized iteration range.
type ivBound struct {
	iv     *indVar
	lo, hi *LinExpr
}

// ---------------------------------------------------------------------------

// substExtreme replaces v in l with its lower or upper bound expression
// depending on the sign of v's coefficient and whether we want the maximum
// (wantMax) or minimum of l.
func substExtreme(l *LinExpr, v *types.Object, lo, hi *LinExpr, wantMax bool) *LinExpr {
	c, ok := l.Terms[v]
	if !ok {
		return l
	}
	n := l.clone()
	delete(n.Terms, v)
	pickHi := (c > 0) == wantMax
	if pickHi {
		n.addScaled(hi, c)
	} else {
		n.addScaled(lo, c)
	}
	return n
}

// linEnv is the linearization environment for one candidate loop.
type linEnv struct {
	a   *Analysis
	mod map[*types.Object]bool
	ind map[*types.Object]*indVar
}

// lin converts e to a linear expression over induction variables and
// loop-invariant variables; nil when e is not affine.
func (env *linEnv) lin(e ast.Expr) *LinExpr {
	switch e := e.(type) {
	case *ast.IntLit:
		return NewLin(e.Value)

	case *ast.Sizeof:
		// The checker guarantees a valid type; fold its size.
		return NewLin(env.a.sizeofType(e))

	case *ast.Ident:
		o := env.a.Info.Uses[e.ID()]
		if o == nil {
			return nil
		}
		switch o.Kind {
		case types.ObjGlobal, types.ObjLocal, types.ObjParam:
			if o.Type.Kind != types.Int && o.Type.Kind != types.Ptr {
				return nil
			}
			if _, isInd := env.ind[o]; !isInd && env.mod[o] {
				return nil // modified inside the loop: not invariant
			}
			l := NewLin(0)
			l.Terms[o] = 1
			return l
		}
		return nil

	case *ast.Unary:
		if e.Op == token.MINUS {
			x := env.lin(e.X)
			if x == nil {
				return nil
			}
			x = x.clone()
			x.scale(-1)
			return x
		}
		return nil

	case *ast.Binary:
		switch e.Op {
		case token.PLUS, token.MINUS:
			x := env.lin(e.X)
			y := env.lin(e.Y)
			if x == nil || y == nil {
				return nil
			}
			r := x.clone()
			if e.Op == token.PLUS {
				r.addScaled(y, 1)
			} else {
				r.addScaled(y, -1)
			}
			return r
		case token.STAR:
			x := env.lin(e.X)
			y := env.lin(e.Y)
			if x == nil || y == nil {
				return nil
			}
			switch {
			case x.IsConst():
				r := y.clone()
				r.scale(x.Const)
				return r
			case y.IsConst():
				r := x.clone()
				r.scale(y.Const)
				return r
			}
			return nil
		case token.SHL:
			x := env.lin(e.X)
			y := env.lin(e.Y)
			if x == nil || y == nil || !y.IsConst() || y.Const < 0 || y.Const > 30 {
				return nil
			}
			r := x.clone()
			r.scale(int64(1) << uint(y.Const))
			return r
		}
		// Unsupported operators (paper §5.2: modulo, logical AND/OR, ...).
		return nil
	}
	return nil
}

// addrOf decomposes an lvalue into a loop-invariant base expression plus a
// linear word offset. Returns (nil, nil, reason) on failure.
func (a *Analysis) addrOf(lval ast.Expr, env *linEnv) (ast.Expr, *LinExpr, string) {
	switch e := lval.(type) {
	case *ast.Index:
		elemSize := int64(1)
		if t := a.Info.Types[e.ID()]; t != nil && t.Size() > 0 {
			elemSize = t.Size()
		}
		idx := env.lin(e.Index)
		if idx == nil {
			return nil, nil, fmt.Sprintf("index %s not affine in loop-invariant terms", ast.PrintExpr(e.Index))
		}
		idx = idx.clone()
		idx.scale(elemSize)
		base, off, reason := a.addrOf(e.X, env)
		if base == nil {
			return nil, nil, reason
		}
		off = off.clone()
		off.addScaled(idx, 1)
		return base, off, ""

	case *ast.Ident:
		o := a.Info.Uses[e.ID()]
		if o == nil {
			return nil, nil, "unresolved base"
		}
		switch o.Kind {
		case types.ObjGlobal, types.ObjLocal, types.ObjParam:
			// Arrays: the base is the array lvalue itself. Pointers: the
			// base is the pointer's value, which must be invariant.
			if o.Type.Kind == types.Ptr || o.Type.Kind == types.Int {
				if env.mod[o] {
					return nil, nil, fmt.Sprintf("base pointer %s modified in loop", o.Name)
				}
			}
			return e, NewLin(0), ""
		}
		return nil, nil, "base is not a variable"

	case *ast.Field:
		// s.f / p->f: the field offset is constant; recurse on the base.
		var si *types.StructInfo
		xt := a.Info.Types[e.X.ID()]
		if e.Arrow {
			if xt == nil || xt.Kind != types.Ptr || xt.Elem.Kind != types.StructT {
				return nil, nil, "bad arrow base"
			}
			si = xt.Elem.Struct
			// The pointer value must be invariant; treat p->f with p as
			// base.
			base, off, reason := a.addrOf(e.X, env)
			if base == nil {
				return nil, nil, reason
			}
			fi := si.Field(e.Name)
			if fi == nil {
				return nil, nil, "unknown field"
			}
			off = off.clone()
			off.Const += fi.Offset
			return base, off, ""
		}
		if xt == nil || xt.Kind != types.StructT {
			return nil, nil, "bad field base"
		}
		si = xt.Struct
		base, off, reason := a.addrOf(e.X, env)
		if base == nil {
			return nil, nil, reason
		}
		fi := si.Field(e.Name)
		if fi == nil {
			return nil, nil, "unknown field"
		}
		off = off.clone()
		off.Const += fi.Offset
		return base, off, ""

	case *ast.Unary:
		if e.Op == token.STAR {
			// *p: base is the invariant pointer p.
			if id, ok := e.X.(*ast.Ident); ok {
				return a.addrOf(id, env)
			}
			return nil, nil, "deref of non-variable"
		}
		return nil, nil, "unsupported lvalue shape"
	}
	return nil, nil, "unsupported lvalue shape"
}

func (a *Analysis) sizeofType(e *ast.Sizeof) int64 {
	t := e.Type
	if t.Stars > 0 {
		return 1
	}
	switch t.Kind {
	case ast.TypeInt:
		return 1
	case ast.TypeStruct:
		if si := a.Info.Structs[t.StructName]; si != nil {
			return si.Size
		}
	}
	return 1
}

// ---------------------------------------------------------------------------
// Loop header parsing

// parseLoopHeader recognizes canonical counted loops:
//
//	for (i = E0; i < E1; i++)        i in [E0, E1-1]
//	for (i = E0; i <= E1; i += c)    i in [E0, E1]
//	for (i = E0; i > E1; i--)        i in [E1+1, E0]
//	for (i = E0; i >= E1; i -= c)    i in [E1, E0]
//
// Anything else (while loops, infinite loops, compound conditions) is
// imprecise for bounds purposes.
func (a *Analysis) parseLoopHeader(loop ast.Stmt) (*indVar, string) {
	fs, ok := loop.(*ast.ForStmt)
	if !ok {
		return nil, "not a counted for-loop"
	}
	if fs.CondE == nil || fs.Post == nil || fs.Init == nil {
		return nil, "for-loop header incomplete"
	}

	// Induction variable and initial expression.
	var obj *types.Object
	var initE ast.Expr
	switch init := fs.Init.(type) {
	case *ast.DeclStmt:
		obj = a.Info.Objects[init.Decl.ID()]
		initE = init.Decl.Init
	case *ast.AssignStmt:
		if init.Op != token.ASSIGN {
			return nil, "loop init is compound assignment"
		}
		id, ok := init.LHS.(*ast.Ident)
		if !ok {
			return nil, "loop init target not a variable"
		}
		obj = a.Info.Uses[id.ID()]
		initE = init.RHS
	default:
		return nil, "unsupported loop init"
	}
	if obj == nil || initE == nil {
		return nil, "loop init unresolved"
	}

	// Step direction from the post statement.
	dir := 0 // +1 up, -1 down
	switch post := fs.Post.(type) {
	case *ast.IncDecStmt:
		id, ok := post.X.(*ast.Ident)
		if !ok || a.Info.Uses[id.ID()] != obj {
			return nil, "loop post does not step the induction variable"
		}
		if post.Op == token.INC {
			dir = 1
		} else {
			dir = -1
		}
	case *ast.AssignStmt:
		id, ok := post.LHS.(*ast.Ident)
		if !ok || a.Info.Uses[id.ID()] != obj {
			return nil, "loop post does not step the induction variable"
		}
		step, ok := post.RHS.(*ast.IntLit)
		if !ok || step.Value <= 0 {
			// i += expr with non-constant or non-positive step.
			return nil, "loop step not a positive constant"
		}
		switch post.Op {
		case token.ADD_ASSIGN:
			dir = 1
		case token.SUB_ASSIGN:
			dir = -1
		default:
			return nil, "unsupported loop post"
		}
	default:
		return nil, "unsupported loop post"
	}

	// Condition: i <op> E1 (or E1 <op> i).
	cond, ok := fs.CondE.(*ast.Binary)
	if !ok {
		return nil, "loop condition not a comparison"
	}
	op := cond.Op
	lhsID, lhsIsVar := cond.X.(*ast.Ident)
	rhsID, rhsIsVar := cond.Y.(*ast.Ident)
	var limit ast.Expr
	switch {
	case lhsIsVar && a.Info.Uses[lhsID.ID()] == obj:
		limit = cond.Y
	case rhsIsVar && a.Info.Uses[rhsID.ID()] == obj:
		limit = cond.X
		// Mirror the operator: E1 > i is i < E1 etc.
		switch op {
		case token.LT:
			op = token.GT
		case token.LE:
			op = token.GE
		case token.GT:
			op = token.LT
		case token.GE:
			op = token.LE
		}
	default:
		return nil, "loop condition does not test the induction variable"
	}

	iv := &indVar{obj: obj, loop: loop}
	one := func(e ast.Expr, delta int64) ast.Expr {
		// Build e + delta as a synthetic node-less expression; linearize
		// later handles Binary over the original nodes, so synthesize via
		// a Binary with reused metadata (IDs don't matter here because
		// lin() only reads structure and Uses of leaf Idents).
		if delta == 0 {
			return e
		}
		lit := &ast.IntLit{Value: delta}
		lit.SetMeta(e.Pos(), e.ID()) // reuse metadata; lin() ignores it
		b := &ast.Binary{Op: token.PLUS, X: e, Y: lit}
		b.SetMeta(e.Pos(), e.ID())
		return b
	}

	switch {
	case dir > 0 && op == token.LT:
		iv.loE, iv.hiE = initE, one(limit, -1)
	case dir > 0 && op == token.LE:
		iv.loE, iv.hiE = initE, limit
	case dir < 0 && op == token.GT:
		iv.loE, iv.hiE = one(limit, 1), initE
	case dir < 0 && op == token.GE:
		iv.loE, iv.hiE = limit, initE
	case dir > 0 && op == token.NEQ:
		// i != E1 stepping up behaves as i < E1 for well-formed loops.
		iv.loE, iv.hiE = initE, one(limit, -1)
	default:
		return nil, "loop direction and condition disagree"
	}
	return iv, ""
}

// rootArrayObj resolves an lvalue to its root array/struct variable if the
// whole access path stays within one aggregate (no pointer indirection);
// nil otherwise.
func (a *Analysis) rootArrayObj(e ast.Expr) *types.Object {
	switch e := e.(type) {
	case *ast.Ident:
		o := a.Info.Uses[e.ID()]
		if o == nil {
			return nil
		}
		if o.Type.Kind == types.Array || o.Type.Kind == types.StructT {
			return o
		}
		return nil
	case *ast.Index:
		if t := a.Info.Types[e.X.ID()]; t == nil || t.Kind != types.Array {
			return nil // pointer-based indexing
		}
		return a.rootArrayObj(e.X)
	case *ast.Field:
		if e.Arrow {
			return nil
		}
		return a.rootArrayObj(e.X)
	}
	return nil
}

// varAssignedInBody reports whether obj is assigned anywhere in the loop
// body (the header's own post-statement is exempt).
func (a *Analysis) varAssignedInBody(loop ast.Stmt, obj *types.Object) bool {
	var body *ast.Block
	switch l := loop.(type) {
	case *ast.ForStmt:
		body = l.Body
	case *ast.WhileStmt:
		body = l.Body
	default:
		return true
	}
	assigned := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			if id, ok := s.LHS.(*ast.Ident); ok && a.Info.Uses[id.ID()] == obj {
				assigned = true
			}
		case *ast.IncDecStmt:
			if id, ok := s.X.(*ast.Ident); ok && a.Info.Uses[id.ID()] == obj {
				assigned = true
			}
		}
		return !assigned
	})
	return assigned
}

// modifiedVars collects every variable assigned within the loop (including
// nested statements). Pointer stores and calls conservatively mark all
// address-taken variables as modified.
func (a *Analysis) modifiedVars(loop ast.Stmt) map[*types.Object]bool {
	mod := make(map[*types.Object]bool)
	var markAllAddrTaken bool
	ast.Inspect(loop, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.DeclStmt:
			// A variable declared inside the loop takes a fresh value per
			// iteration: never invariant.
			if o := a.Info.Objects[s.Decl.ID()]; o != nil {
				mod[o] = true
			}
		case *ast.AssignStmt:
			switch lhs := s.LHS.(type) {
			case *ast.Ident:
				if o := a.Info.Uses[lhs.ID()]; o != nil {
					mod[o] = true
				}
			default:
				// A store through an array lvalue modifies only that
				// array; a store through a pointer may modify anything.
				if o := a.rootArrayObj(lhs); o != nil {
					mod[o] = true
				} else {
					markAllAddrTaken = true
				}
			}
		case *ast.IncDecStmt:
			if id, ok := s.X.(*ast.Ident); ok {
				if o := a.Info.Uses[id.ID()]; o != nil {
					mod[o] = true
				}
			} else {
				markAllAddrTaken = true
			}
		case *ast.Call:
			// A call may modify globals and anything address-taken.
			markAllAddrTaken = true
		}
		return true
	})
	if markAllAddrTaken {
		for _, o := range a.Info.Uses {
			if o.AddrTaken || o.Kind == types.ObjGlobal {
				mod[o] = true
			}
		}
	}
	return mod
}

// ---------------------------------------------------------------------------
// LP cross-check

// lpCheck verifies a fully numeric elimination against the exact LP
// solver: minimize/maximize the original offset subject to the box
// constraints on the induction variables.
func (a *Analysis) lpCheck(off *LinExpr, bounds []ivBound, wantLo, wantHi int64) bool {
	// Variables: the induction variables, in order.
	idx := make(map[*types.Object]int)
	for i, b := range bounds {
		idx[b.iv.obj] = i
	}
	n := len(bounds)
	p := lp.New(n)
	for i, b := range bounds {
		if !b.lo.IsConst() || !b.hi.IsConst() {
			return true // symbolic: nothing to check numerically
		}
		if b.lo.Const > b.hi.Const {
			return true // empty iteration space; any range is fine
		}
		coef := make([]int64, n)
		coef[i] = 1
		p.AddConstraintInts(coef, lp.GE, b.lo.Const)
		p.AddConstraintInts(coef, lp.LE, b.hi.Const)
	}
	obj := make([]int64, n)
	for v, c := range off.Terms {
		i, ok := idx[v]
		if !ok {
			return true // offset references an invariant: symbolic case
		}
		obj[i] = c
	}
	vmin, _, st1 := p.MinimizeInts(obj)
	vmax, _, st2 := p.MaximizeInts(obj)
	if st1 != lp.Optimal || st2 != lp.Optimal {
		return false
	}
	lo := new(big.Rat).Add(vmin, big.NewRat(off.Const, 1))
	hi := new(big.Rat).Add(vmax, big.NewRat(off.Const, 1))
	return lo.Cmp(big.NewRat(wantLo, 1)) == 0 && hi.Cmp(big.NewRat(wantHi, 1)) == 0
}

// ---------------------------------------------------------------------------
// Helpers for the instrumenter

// LoopHasCalls reports whether the loop body contains any call to a user
// function or a blocking synchronization builtin; such loops are not given
// loop-locks (paper §5.3: "we applied their technique only for loops with
// no function calls in the loop body").
func LoopHasCalls(info *types.Info, loop ast.Stmt) bool {
	var body *ast.Block
	switch l := loop.(type) {
	case *ast.ForStmt:
		body = l.Body
	case *ast.WhileStmt:
		body = l.Body
	default:
		return true
	}
	has := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.Call)
		if !ok {
			return true
		}
		target := info.CallTargets[call.ID()]
		if target == nil {
			has = true // indirect call
			return false
		}
		if target.Kind == types.ObjFunc {
			has = true
			return false
		}
		if target.Builtin.IsSyncOp() {
			has = true
			return false
		}
		return true
	})
	return has
}

// LoopBodySize estimates the static statement count of the loop body; the
// instrumenter compares it against the loop-body-threshold (paper §5.3).
func LoopBodySize(loop ast.Stmt) int {
	var body *ast.Block
	switch l := loop.(type) {
	case *ast.ForStmt:
		body = l.Body
	case *ast.WhileStmt:
		body = l.Body
	default:
		return 0
	}
	n := 0
	ast.Inspect(body, func(node ast.Node) bool {
		if _, ok := node.(ast.Stmt); ok {
			n++
		}
		return true
	})
	return n
}

// RangeSentinels returns the (lo, hi) literal values for an imprecise
// loop-lock acquire.
func RangeSentinels() (int64, int64) { return weaklock.NegInf, weaklock.PosInf }
