package symbolic

import (
	"strings"
	"testing"

	"repro/internal/minic/ast"
	"repro/internal/minic/parser"
	"repro/internal/minic/types"
)

// setup parses src and returns (analysis, loop chain, lvalue) where the
// lvalue is the unique expression printing as lvalText inside function fn,
// and the chain is its enclosing loops outermost-first.
func setup(t *testing.T, src, fnName, lvalText string) (*Analysis, []ast.Stmt, ast.Expr) {
	t.Helper()
	f := parser.MustParse("t.mc", src)
	info := types.MustCheck(f)
	a := New(info)
	fn := info.Funcs[fnName]
	if fn == nil {
		t.Fatalf("no function %s", fnName)
	}
	var chain []ast.Stmt
	var lval ast.Expr

	var walk func(s ast.Stmt, loops []ast.Stmt)
	findIn := func(n ast.Node, loops []ast.Stmt) {
		ast.Inspect(n, func(x ast.Node) bool {
			if e, ok := x.(ast.Expr); ok && lval == nil && ast.PrintExpr(e) == lvalText {
				lval = e
				chain = append([]ast.Stmt{}, loops...)
			}
			return true
		})
	}
	walk = func(s ast.Stmt, loops []ast.Stmt) {
		switch s := s.(type) {
		case *ast.Block:
			for _, st := range s.Stmts {
				walk(st, loops)
			}
		case *ast.IfStmt:
			findIn(s.CondE, loops)
			walk(s.Then, loops)
			if s.Else != nil {
				walk(s.Else, loops)
			}
		case *ast.WhileStmt:
			findIn(s.CondE, loops)
			walk(s.Body, append(loops, s))
		case *ast.ForStmt:
			inner := append(loops, s)
			if s.Init != nil {
				walk(s.Init, inner)
			}
			if s.CondE != nil {
				findIn(s.CondE, inner)
			}
			if s.Post != nil {
				walk(s.Post, inner)
			}
			walk(s.Body, inner)
		default:
			findIn(s, loops)
		}
	}
	walk(fn.Decl.Body, nil)
	if lval == nil {
		t.Fatalf("lvalue %q not found in %s", lvalText, fnName)
	}
	return a, chain, lval
}

func TestConstantLoopBounds(t *testing.T) {
	a, chain, lv := setup(t, `
int rank[64];
void f(void) {
    for (int j = 0; j < 64; j++) {
        rank[j] = 0;
    }
}`, "f", "rank[j]")
	b := a.AccessBounds(chain, lv)
	if !b.Precise {
		t.Fatalf("imprecise: %s", b.Reason)
	}
	if b.LoWords.String() != "0" || b.HiWords.String() != "63" {
		t.Errorf("bounds [%s, %s], want [0, 63]", b.LoWords, b.HiWords)
	}
	if ast.PrintExpr(b.Base) != "rank" {
		t.Errorf("base = %s, want rank", ast.PrintExpr(b.Base))
	}
}

func TestSymbolicUpperBound(t *testing.T) {
	// The paper's Figure 4 first inner loop: rank[j], j in [0, radix-1].
	a, chain, lv := setup(t, `
int rank[4096];
void f(int radix) {
    for (int j = 0; j < radix; j++) {
        rank[j] = 0;
    }
}`, "f", "rank[j]")
	b := a.AccessBounds(chain, lv)
	if !b.Precise {
		t.Fatalf("imprecise: %s", b.Reason)
	}
	if got := b.HiWords.String(); got != "radix + -1" {
		t.Errorf("hi = %q, want \"radix + -1\"", got)
	}
	if got := b.LoWords.String(); got != "0" {
		t.Errorf("lo = %q, want 0", got)
	}
}

func TestDataDependentIndexImprecise(t *testing.T) {
	// The Figure 4 second inner loop: rank[my_key] with my_key computed
	// from data read inside the loop — must be [-inf, +inf].
	a, chain, lv := setup(t, `
int rank[4096];
int key_from[65536];
void f(int start, int stop, int bb) {
    for (int j = start; j < stop; j++) {
        int my_key = key_from[j] & bb;
        rank[my_key] = rank[my_key] + 1;
    }
}`, "f", "rank[my_key]")
	b := a.AccessBounds(chain, lv)
	if b.Precise {
		t.Fatalf("rank[my_key] must be imprecise, got %s", b)
	}
}

func TestKeyFromPreciseInSameLoop(t *testing.T) {
	// ...but key_from[j] in the same loop IS precise (paper §5.2: "we can
	// derive the symbolic bounds for the array key_from accurately").
	a, chain, lv := setup(t, `
int rank[4096];
int key_from[65536];
void f(int start, int stop, int bb) {
    for (int j = start; j < stop; j++) {
        int my_key = key_from[j] & bb;
        rank[my_key] = rank[my_key] + 1;
    }
}`, "f", "key_from[j]")
	b := a.AccessBounds(chain, lv)
	if !b.Precise {
		t.Fatalf("key_from[j] should be precise: %s", b.Reason)
	}
	if got := b.LoWords.String(); got != "start" {
		t.Errorf("lo = %q, want start", got)
	}
	if got := b.HiWords.String(); got != "stop + -1" {
		t.Errorf("hi = %q, want \"stop + -1\"", got)
	}
}

func TestNestedLoopsFlattened(t *testing.T) {
	// mat[i][j] over both loops: word offsets [0, 8*4-1] from the outer
	// loop's perspective.
	a, chain, lv := setup(t, `
int mat[8][4];
void f(void) {
    for (int i = 0; i < 8; i++) {
        for (int j = 0; j < 4; j++) {
            mat[i][j] = i + j;
        }
    }
}`, "f", "mat[i][j]")
	if len(chain) != 2 {
		t.Fatalf("chain length %d, want 2", len(chain))
	}
	b := a.AccessBounds(chain, lv)
	if !b.Precise {
		t.Fatalf("imprecise: %s", b.Reason)
	}
	if b.Loop != chain[0] {
		t.Errorf("should select the outermost loop")
	}
	if b.LoWords.String() != "0" || b.HiWords.String() != "31" {
		t.Errorf("bounds [%s, %s], want [0, 31]", b.LoWords, b.HiWords)
	}
}

func TestPartitionedSlices(t *testing.T) {
	// Thread-partitioned access: arr[base + i], i in [0, n-1]: bounds
	// [base, base+n-1] — disjoint across workers with disjoint base.
	a, chain, lv := setup(t, `
int arr[1024];
void f(int base, int n) {
    for (int i = 0; i < n; i++) {
        arr[base + i] = i;
    }
}`, "f", "arr[base + i]")
	b := a.AccessBounds(chain, lv)
	if !b.Precise {
		t.Fatalf("imprecise: %s", b.Reason)
	}
	if got := b.LoWords.String(); got != "base" {
		t.Errorf("lo = %q, want base", got)
	}
	if got := b.HiWords.String(); got != "base + n + -1" {
		t.Errorf("hi = %q, want \"base + n + -1\"", got)
	}
}

func TestStrideAndScale(t *testing.T) {
	a, chain, lv := setup(t, `
int arr[1024];
void f(int n) {
    for (int i = 0; i < n; i++) {
        arr[2 * i + 3] = i;
    }
}`, "f", "arr[2 * i + 3]")
	b := a.AccessBounds(chain, lv)
	if !b.Precise {
		t.Fatalf("imprecise: %s", b.Reason)
	}
	if got := b.LoWords.String(); got != "3" {
		t.Errorf("lo = %q, want 3", got)
	}
	if got := b.HiWords.String(); got != "2*n + 1" {
		t.Errorf("hi = %q, want \"2*n + 1\"", got)
	}
}

func TestDownwardLoop(t *testing.T) {
	a, chain, lv := setup(t, `
int arr[100];
void f(int n) {
    for (int i = n - 1; i >= 0; i--) {
        arr[i] = i;
    }
}`, "f", "arr[i]")
	b := a.AccessBounds(chain, lv)
	if !b.Precise {
		t.Fatalf("imprecise: %s", b.Reason)
	}
	if got := b.LoWords.String(); got != "0" {
		t.Errorf("lo = %q, want 0", got)
	}
	if got := b.HiWords.String(); got != "n + -1" {
		t.Errorf("hi = %q, want \"n + -1\"", got)
	}
}

func TestPointerBase(t *testing.T) {
	a, chain, lv := setup(t, `
void f(int *buf, int n) {
    for (int i = 0; i < n; i++) {
        buf[i] = 0;
    }
}`, "f", "buf[i]")
	b := a.AccessBounds(chain, lv)
	if !b.Precise {
		t.Fatalf("imprecise: %s", b.Reason)
	}
	if ast.PrintExpr(b.Base) != "buf" {
		t.Errorf("base = %s, want buf", ast.PrintExpr(b.Base))
	}
}

func TestModifiedBaseImprecise(t *testing.T) {
	a, chain, lv := setup(t, `
void f(int *buf, int n) {
    for (int i = 0; i < n; i++) {
        buf[0] = i;
        buf = buf + 1;
    }
}`, "f", "buf[0]")
	b := a.AccessBounds(chain, lv)
	if b.Precise {
		t.Fatalf("mutated base must be imprecise")
	}
	if !strings.Contains(b.Reason, "buf") {
		t.Errorf("reason %q should mention buf", b.Reason)
	}
}

func TestModifiedLimitStillSound(t *testing.T) {
	// The limit variable changes inside the loop: not invariant, so the
	// analysis must refuse.
	a, chain, lv := setup(t, `
int arr[100];
void f(int n) {
    for (int i = 0; i < n; i++) {
        arr[i] = i;
        n = n - 1;
    }
}`, "f", "arr[i]")
	b := a.AccessBounds(chain, lv)
	if b.Precise {
		t.Fatalf("bounds with modified limit must be imprecise")
	}
}

func TestWhileLoopImprecise(t *testing.T) {
	a, chain, lv := setup(t, `
int arr[100];
void f(int n) {
    int i = 0;
    while (i < n) {
        arr[i] = i;
        i++;
    }
}`, "f", "arr[i]")
	b := a.AccessBounds(chain, lv)
	if b.Precise {
		t.Fatalf("while loops are not counted loops; must be imprecise")
	}
}

func TestStructFieldAccess(t *testing.T) {
	a, chain, lv := setup(t, `
struct cell { int a; int b; };
struct cell grid[32];
void f(int n) {
    for (int i = 0; i < n; i++) {
        grid[i].b = i;
    }
}`, "f", "grid[i].b")
	b := a.AccessBounds(chain, lv)
	if !b.Precise {
		t.Fatalf("imprecise: %s", b.Reason)
	}
	// Element size 2, field offset 1: lo = 1, hi = 2(n-1)+1 = 2n-1.
	if got := b.LoWords.String(); got != "1" {
		t.Errorf("lo = %q, want 1", got)
	}
	if got := b.HiWords.String(); got != "2*n + -1" {
		t.Errorf("hi = %q, want \"2*n + -1\"", got)
	}
}

func TestShiftScaling(t *testing.T) {
	a, chain, lv := setup(t, `
int arr[4096];
void f(int n) {
    for (int i = 0; i < n; i++) {
        arr[i << 2] = i;
    }
}`, "f", "arr[i << 2]")
	b := a.AccessBounds(chain, lv)
	if !b.Precise {
		t.Fatalf("imprecise: %s", b.Reason)
	}
	if got := b.HiWords.String(); got != "4*n + -4" {
		t.Errorf("hi = %q, want \"4*n + -4\"", got)
	}
}

func TestLoopHasCalls(t *testing.T) {
	f := parser.MustParse("t.mc", `
int g;
int helper(int x) { return x; }
void f(int n) {
    for (int i = 0; i < n; i++) { g = helper(i); }
    for (int i = 0; i < n; i++) { g = i; }
    for (int i = 0; i < n; i++) { print(i); }
}`)
	info := types.MustCheck(f)
	fn := info.Funcs["f"]
	var loops []ast.Stmt
	ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
		if fs, ok := n.(*ast.ForStmt); ok {
			loops = append(loops, fs)
		}
		return true
	})
	if len(loops) != 3 {
		t.Fatalf("found %d loops", len(loops))
	}
	if !LoopHasCalls(info, loops[0]) {
		t.Errorf("loop with helper() should report calls")
	}
	if LoopHasCalls(info, loops[1]) {
		t.Errorf("pure loop should not report calls")
	}
	if LoopHasCalls(info, loops[2]) {
		t.Errorf("print is a non-sync builtin; should not count as a call")
	}
}

func TestEmptyIterationSpace(t *testing.T) {
	// Zero-trip loop: lo > hi is acceptable (an empty range conflicts
	// with nothing).
	a, chain, lv := setup(t, `
int arr[100];
void f(void) {
    for (int i = 5; i < 5; i++) {
        arr[i] = i;
    }
}`, "f", "arr[i]")
	b := a.AccessBounds(chain, lv)
	if !b.Precise {
		t.Fatalf("imprecise: %s", b.Reason)
	}
	if b.LoWords.Const != 5 || b.HiWords.Const != 4 {
		t.Errorf("bounds [%d, %d], want empty [5, 4]", b.LoWords.Const, b.HiWords.Const)
	}
}

func TestHeaderFormLE(t *testing.T) {
	a, chain, lv := setup(t, `
int arr[100];
void f(int n) {
    for (int i = 0; i <= n; i++) {
        arr[i] = i;
    }
}`, "f", "arr[i]")
	b := a.AccessBounds(chain, lv)
	if !b.Precise {
		t.Fatalf("imprecise: %s", b.Reason)
	}
	if b.LoWords.String() != "0" || b.HiWords.String() != "n" {
		t.Errorf("bounds [%s, %s], want [0, n]", b.LoWords, b.HiWords)
	}
}

func TestHeaderFormStrictGreater(t *testing.T) {
	a, chain, lv := setup(t, `
int arr[100];
void f(int n) {
    for (int i = n; i > 0; i--) {
        arr[i] = i;
    }
}`, "f", "arr[i]")
	b := a.AccessBounds(chain, lv)
	if !b.Precise {
		t.Fatalf("imprecise: %s", b.Reason)
	}
	if b.LoWords.String() != "1" || b.HiWords.String() != "n" {
		t.Errorf("bounds [%s, %s], want [1, n]", b.LoWords, b.HiWords)
	}
}

func TestHeaderFormStep2(t *testing.T) {
	a, chain, lv := setup(t, `
int arr[100];
void f(int n) {
    for (int i = 0; i < n; i += 2) {
        arr[i] = i;
    }
}`, "f", "arr[i]")
	b := a.AccessBounds(chain, lv)
	if !b.Precise {
		t.Fatalf("imprecise: %s", b.Reason)
	}
	// Sound upper bound n-1 even though only even indices are touched.
	if b.HiWords.String() != "n + -1" {
		t.Errorf("hi %q", b.HiWords)
	}
}

func TestHeaderFormNEQ(t *testing.T) {
	a, chain, lv := setup(t, `
int arr[100];
void f(int n) {
    for (int i = 0; i != n; i++) {
        arr[i] = i;
    }
}`, "f", "arr[i]")
	b := a.AccessBounds(chain, lv)
	if !b.Precise {
		t.Fatalf("imprecise: %s", b.Reason)
	}
	if b.HiWords.String() != "n + -1" {
		t.Errorf("hi %q", b.HiWords)
	}
}

func TestHeaderReversedComparison(t *testing.T) {
	// The limit on the left: n > i behaves like i < n.
	a, chain, lv := setup(t, `
int arr[100];
void f(int n) {
    for (int i = 0; n > i; i++) {
        arr[i] = i;
    }
}`, "f", "arr[i]")
	b := a.AccessBounds(chain, lv)
	if !b.Precise {
		t.Fatalf("imprecise: %s", b.Reason)
	}
	if b.HiWords.String() != "n + -1" {
		t.Errorf("hi %q", b.HiWords)
	}
}

func TestArrowFieldBase(t *testing.T) {
	a, chain, lv := setup(t, `
struct buf { int len; int data[32]; };
void f(struct buf *p, int n) {
    for (int i = 0; i < n; i++) {
        p->data[i] = i;
    }
}`, "f", "p->data[i]")
	b := a.AccessBounds(chain, lv)
	if !b.Precise {
		t.Fatalf("imprecise: %s", b.Reason)
	}
	// data sits at word offset 1 in struct buf.
	if b.LoWords.String() != "1" || b.HiWords.String() != "n" {
		t.Errorf("bounds [%s, %s], want [1, n]", b.LoWords, b.HiWords)
	}
}

func TestNoLoopChain(t *testing.T) {
	a, _, lv := setup(t, `
int g;
void f(void) {
    g = 1;
}`, "f", "g")
	b := a.AccessBounds(nil, lv)
	if b.Precise {
		t.Fatalf("no loop chain must be imprecise")
	}
}

func TestLoopBodySizeCounts(t *testing.T) {
	f := parser.MustParse("t.mc", `
void f(int n) {
    for (int i = 0; i < n; i++) {
        int a = i;
        int b = a * 2;
        if (b > 4) { b = 4; }
    }
}`)
	info := types.MustCheck(f)
	_ = info
	var loop ast.Stmt
	ast.Inspect(f.Func("f").Body, func(x ast.Node) bool {
		if fs, ok := x.(*ast.ForStmt); ok && loop == nil {
			loop = fs
		}
		return true
	})
	if n := LoopBodySize(loop); n < 4 || n > 10 {
		t.Errorf("body size %d out of expected range", n)
	}
}
