package trace

import (
	"time"

	"repro/internal/minic/ast"
	"repro/internal/vm"
)

// ecell is the adaptive shadow state of one address (FastTrack, PLDI
// 2009): the last write is always a single epoch; reads are a single
// epoch (hasR) until genuinely concurrent reads force promotion to a
// per-thread read vector (reads, non-empty iff promoted). A write demotes
// the cell back to epoch mode.
type ecell struct {
	w     access
	hasW  bool
	r     access // read epoch; valid iff hasR and len(reads) == 0
	hasR  bool
	reads []access // promoted read vector: latest read per thread
}

// EpochChecker is the FastTrack-style happens-before race checker: the
// default production checker behind NewChecker. It reports exactly the
// same race verdicts as the full-vector VectorChecker oracle (the
// differential test layer pins this) while doing O(1) work on the
// overwhelmingly common access shapes:
//
//   - same-epoch re-access (a statement re-executed with no intervening
//     synchronization — every tight loop): no vector-clock work at all;
//   - thread-local and exchange-ordered read sequences: a single read
//     epoch is updated in place instead of growing a read set;
//   - read vectors exist only for addresses with genuinely concurrent
//     readers, and a write resets them to epoch mode.
//
// Epoch discards are verdict-preserving by happens-before transitivity: a
// read epoch r1 is only dropped in favour of r2 when r1 ≤ r2 and both
// denote the same source node, so any write racing r1 also races r2 and
// reports the identical (node, node) pair.
type EpochChecker struct {
	hb     hbState
	shadow map[int64]*ecell
	rep    reporter

	wall int64 // accumulated nanoseconds spent draining event batches
}

// NewChecker returns the production happens-before checker (adaptive
// FastTrack epochs); at most maxRaces distinct (node, node) races are
// retained (0 means a generous default). Use NewVectorChecker for the
// full-vector differential oracle.
func NewChecker(maxRaces int) *EpochChecker {
	return &EpochChecker{
		hb:     newHBState(),
		shadow: make(map[int64]*ecell),
		rep:    newReporter(maxRaces),
	}
}

// Races returns the distinct races found, ordered.
func (c *EpochChecker) Races() []Race { return c.rep.sorted() }

// RaceCount returns the number of distinct races.
func (c *EpochChecker) RaceCount() int { return len(c.rep.races) }

// WallNS returns the cumulative wall-clock nanoseconds this checker spent
// consuming event batches (the harness's checker_wall_ns metric). Only
// batched delivery through Drain is timed; the per-call hook path is for
// tests.
func (c *EpochChecker) WallNS() int64 { return c.wall }

// Access implements vm.TraceHook.
func (c *EpochChecker) Access(tid int, addr int64, write bool, node ast.NodeID, clock int64) {
	s, ok := c.shadow[addr]
	if !ok {
		s = &ecell{}
		c.shadow[addr] = s
	}
	cur := access{tid: tid, clk: c.hb.clockOf(tid), node: node}

	if write {
		// Same-epoch write fast path: the identical statement already
		// wrote at this epoch and no reads intervened — the shadow state
		// would be rewritten unchanged and every race check was already
		// performed (and deduplicated) the first time.
		if s.hasW && s.w == cur && !s.hasR && len(s.reads) == 0 {
			return
		}
		v := *c.hb.vc(tid)
		if s.hasW && s.w.tid != tid && !v.covers(s.w.tid, s.w.clk) {
			c.rep.report(addr, s.w, true, cur, true)
		}
		if len(s.reads) > 0 {
			for _, rd := range s.reads {
				if rd.tid != tid && !v.covers(rd.tid, rd.clk) {
					c.rep.report(addr, rd, false, cur, true)
				}
			}
		} else if s.hasR {
			if s.r.tid != tid && !v.covers(s.r.tid, s.r.clk) {
				c.rep.report(addr, s.r, false, cur, true)
			}
		}
		s.w = cur
		s.hasW = true
		s.hasR = false
		s.reads = s.reads[:0]
		return
	}

	// Same-epoch read fast paths: the identical read already happened at
	// this epoch, so the write check was already performed with the same
	// node pair and the stored state would not change.
	if len(s.reads) == 0 {
		if s.hasR && s.r == cur {
			return
		}
	} else {
		for i := range s.reads {
			if s.reads[i] == cur {
				return
			}
		}
	}

	v := *c.hb.vc(tid)
	if s.hasW && s.w.tid != tid && !v.covers(s.w.tid, s.w.clk) {
		c.rep.report(addr, s.w, true, cur, false)
	}

	if len(s.reads) > 0 {
		// Promoted: latest read per thread, exactly the oracle's set.
		for i := range s.reads {
			if s.reads[i].tid == tid {
				s.reads[i] = cur
				return
			}
		}
		s.reads = append(s.reads, cur)
		return
	}
	if !s.hasR {
		s.r = cur
		s.hasR = true
		return
	}
	if s.r.tid == tid {
		s.r = cur // thread's own newer read epoch
		return
	}
	// FastTrack's exclusive-read transfer, restricted to the
	// verdict-preserving case: the previous epoch is ordered before this
	// read AND names the same source node, so dropping it loses no
	// reportable pair (any write racing the old epoch races the new one,
	// with the same nodes).
	if s.r.node == node && v.covers(s.r.tid, s.r.clk) {
		s.r = cur
		return
	}
	// Genuinely concurrent (or differently-attributed) reads: promote.
	s.reads = append(s.reads, s.r, cur)
	s.hasR = false
}

// SyncEvent implements vm.SyncEventHook.
func (c *EpochChecker) SyncEvent(key vm.SyncKey, kind vm.SyncEventKind, tid int, clock int64) {
	c.hb.syncEvent(key, kind, tid)
}

// Drain implements vm.EventSink: consume one batch in program order.
func (c *EpochChecker) Drain(events []vm.Event) {
	start := time.Now()
	for i := range events {
		e := &events[i]
		switch e.Kind {
		case vm.EventRead:
			c.Access(int(e.Tid), e.Addr, false, e.Node, e.Clock)
		case vm.EventWrite:
			c.Access(int(e.Tid), e.Addr, true, e.Node, e.Clock)
		case vm.EventSync:
			c.hb.syncEvent(e.Key(), e.Sync, int(e.Tid))
		}
	}
	c.wall += time.Since(start).Nanoseconds()
}
