package trace

import (
	"math/rand"
	"testing"

	"repro/internal/minic/ast"
	"repro/internal/vm"
)

// raceKey canonicalizes a race to its deduplication identity.
func raceKey(r Race) [2]ast.NodeID {
	a, b := r.NodeA, r.NodeB
	if a > b {
		a, b = b, a
	}
	return [2]ast.NodeID{a, b}
}

func sameVerdicts(t *testing.T, ep *EpochChecker, vc *VectorChecker) {
	t.Helper()
	er, vr := ep.Races(), vc.Races()
	if len(er) != len(vr) {
		t.Fatalf("race count diverged: epoch=%d vector=%d\nepoch: %v\nvector: %v",
			len(er), len(vr), er, vr)
	}
	for i := range er {
		if raceKey(er[i]) != raceKey(vr[i]) {
			t.Fatalf("race %d diverged: epoch=%v vector=%v", i, er[i], vr[i])
		}
	}
}

// TestEpochDifferentialRandom feeds identical random event streams (synthetic
// accesses + lock operations over a few threads, addresses, and nodes) to the
// epoch checker and the full-vector oracle and requires identical verdicts.
func TestEpochDifferentialRandom(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		rng := rand.New(rand.NewSource(seed))
		ep := NewChecker(0)
		vc := NewVectorChecker(0)
		both := []RaceChecker{ep, vc}

		nthreads := 2 + rng.Intn(3)
		for _, c := range both {
			for tid := 1; tid < nthreads; tid++ {
				c.SyncEvent(vm.SyncKey{Class: vm.SyncSpawn, ID: int64(tid)}, vm.EvSpawn, 0, 0)
			}
		}
		steps := 200 + rng.Intn(200)
		for i := 0; i < steps; i++ {
			tid := rng.Intn(nthreads)
			switch rng.Intn(10) {
			case 0:
				key := vm.SyncKey{Class: vm.SyncMutex, ID: int64(rng.Intn(2))}
				for _, c := range both {
					c.SyncEvent(key, vm.EvAcquire, tid, 0)
				}
			case 1:
				key := vm.SyncKey{Class: vm.SyncMutex, ID: int64(rng.Intn(2))}
				for _, c := range both {
					c.SyncEvent(key, vm.EvRelease, tid, 0)
				}
			default:
				addr := int64(rng.Intn(6))
				write := rng.Intn(3) == 0
				// Node models the static statement: mostly a function of
				// (addr, write) like instrumented code, occasionally an
				// alias to stress differently-attributed same-epoch reads.
				node := ast.NodeID(int(addr)*2 + 100)
				if write {
					node++
				}
				if rng.Intn(8) == 0 {
					node += 50
				}
				for _, c := range both {
					c.Access(tid, addr, write, node, 0)
				}
			}
		}
		sameVerdicts(t, ep, vc)
	}
}

// TestEpochPromotion exercises the read-epoch → read-vector promotion: two
// concurrent readers followed by an unordered write must report both
// read/write races, same as the oracle.
func TestEpochPromotion(t *testing.T) {
	ep := NewChecker(0)
	vc := NewVectorChecker(0)
	for _, c := range []RaceChecker{ep, vc} {
		c.SyncEvent(vm.SyncKey{Class: vm.SyncSpawn, ID: 1}, vm.EvSpawn, 0, 0)
		c.SyncEvent(vm.SyncKey{Class: vm.SyncSpawn, ID: 2}, vm.EvSpawn, 0, 0)
		c.Access(1, 8, false, 11, 0) // concurrent readers, distinct nodes
		c.Access(2, 8, false, 22, 0)
		c.Access(0, 8, true, 33, 0) // unordered write races both reads
	}
	if n := ep.RaceCount(); n != 2 {
		t.Fatalf("want 2 read/write races after promotion, got %d: %v", n, ep.Races())
	}
	sameVerdicts(t, ep, vc)
}

// TestEpochSameEpochFastPath re-runs the same access many times within one
// epoch; the checker must neither duplicate reports nor grow state.
func TestEpochSameEpochFastPath(t *testing.T) {
	ep := NewChecker(0)
	ep.SyncEvent(vm.SyncKey{Class: vm.SyncSpawn, ID: 1}, vm.EvSpawn, 0, 0)
	for i := 0; i < 1000; i++ {
		ep.Access(1, 4, true, 7, 0)
		ep.Access(1, 4, false, 8, 0)
	}
	s := ep.shadow[4]
	if len(s.reads) != 0 {
		t.Fatalf("same-thread re-reads must stay in epoch mode, got %d reads", len(s.reads))
	}
	if ep.RaceCount() != 0 {
		t.Fatalf("single-thread accesses raced: %v", ep.Races())
	}
}

// TestEpochDrainMatchesHooks feeds one stream via the batched sink and the
// same stream via the legacy hooks; verdicts must match.
func TestEpochDrainMatchesHooks(t *testing.T) {
	events := []vm.Event{
		{Kind: vm.EventSync, Sync: vm.EvSpawn, Class: vm.SyncSpawn, Tid: 0, Addr: 1},
		{Kind: vm.EventSync, Sync: vm.EvSpawn, Class: vm.SyncSpawn, Tid: 0, Addr: 2},
		{Kind: vm.EventWrite, Tid: 1, Addr: 16, Node: 5},
		{Kind: vm.EventRead, Tid: 2, Addr: 16, Node: 6},
		{Kind: vm.EventWrite, Tid: 0, Addr: 16, Node: 7},
	}
	sink := NewChecker(0)
	sink.Drain(events[:3])
	sink.Drain(events[3:]) // split across batches

	hook := NewChecker(0)
	for _, e := range events {
		switch e.Kind {
		case vm.EventSync:
			hook.SyncEvent(e.Key(), e.Sync, int(e.Tid), e.Clock)
		case vm.EventRead:
			hook.Access(int(e.Tid), e.Addr, false, e.Node, e.Clock)
		case vm.EventWrite:
			hook.Access(int(e.Tid), e.Addr, true, e.Node, e.Clock)
		}
	}
	sameVerdicts(t, sink, mustVector(hook))
}

// mustVector adapts a second EpochChecker for sameVerdicts' signature by
// replaying its verdicts through a VectorChecker-shaped comparison. (The
// helper only reads Races(), so a thin wrapper suffices.)
func mustVector(ep *EpochChecker) *VectorChecker {
	vc := NewVectorChecker(0)
	vc.rep = ep.rep
	return vc
}

// TestVCGrowthBounded sanity-checks that epoch mode avoids allocating read
// vectors for exchange-ordered handoffs (lock-protected counter).
func TestVCGrowthBounded(t *testing.T) {
	ep := NewChecker(0)
	key := vm.SyncKey{Class: vm.SyncMutex, ID: 1}
	ep.SyncEvent(vm.SyncKey{Class: vm.SyncSpawn, ID: 1}, vm.EvSpawn, 0, 0)
	// Two threads ping-pong a counter under a lock: read then write inside
	// the critical section, attribution constant per op as instrumented
	// code produces.
	for i := 0; i < 100; i++ {
		tid := i % 2
		ep.SyncEvent(key, vm.EvAcquire, tid, 0)
		ep.Access(tid, 64, false, 40, 0)
		ep.Access(tid, 64, true, 41, 0)
		ep.SyncEvent(key, vm.EvRelease, tid, 0)
	}
	if ep.RaceCount() != 0 {
		t.Fatalf("lock-protected counter raced: %v", ep.Races())
	}
	if s := ep.shadow[64]; len(s.reads) != 0 {
		t.Fatalf("ordered handoff must not promote to a read vector (got %d entries)", len(s.reads))
	}
}
