// Package trace implements a dynamic happens-before data-race checker over
// the VM's batched observation event stream. Two interchangeable checkers
// share one verdict semantics:
//
//   - EpochChecker (the default, NewChecker) uses FastTrack-style adaptive
//     epochs (Flanagan & Freund, PLDI 2009): the last write is a single
//     epoch, reads are a single epoch that is promoted to a per-thread
//     read vector only when genuinely concurrent reads appear, and
//     same-epoch re-accesses take an O(1) fast path with no vector-clock
//     comparison at all.
//   - VectorChecker (NewVectorChecker) is the original full-vector
//     implementation, kept as the oracle for differential testing: on any
//     event stream both checkers report exactly the same set of racy
//     (node, node) pairs and the same race-free verdicts.
//
// Its role in the reproduction is validation: the checker must find races
// in the original benchmarks, and must find *none* in the
// Chimera-instrumented versions under the extended synchronization set —
// the paper's core claim that "programs transformed by Chimera are
// data-race-free under the new set of synchronization operations".
//
// One approximation is inherited from the weak-lock design: two loop-locks
// holders with disjoint address ranges exchange no happens-before edge in
// reality, but this checker joins on the lock identity. That is the same
// granularity at which the recorder logs, so "race-free under the new sync
// set" is checked at exactly the level the replay guarantee needs. Both
// checkers implement it identically (hbState is shared).
package trace

import (
	"fmt"
	"sort"

	"repro/internal/minic/ast"
	"repro/internal/vm"
)

// VC is a vector clock.
type VC []uint32

func (v *VC) ensure(n int) {
	for len(*v) < n {
		*v = append(*v, 0)
	}
}

// join sets v = max(v, o) pointwise.
func (v *VC) join(o VC) {
	v.ensure(len(o))
	for i, c := range o {
		if c > (*v)[i] {
			(*v)[i] = c
		}
	}
}

// covers reports whether epoch (tid, clk) happens-before-or-equals v.
func (v VC) covers(tid int, clk uint32) bool {
	if tid >= len(v) {
		return clk == 0
	}
	return clk <= v[tid]
}

// Race is one detected data race.
type Race struct {
	Addr         int64
	NodeA, NodeB ast.NodeID
	TidA, TidB   int
	WriteA       bool
	WriteB       bool
}

// String renders the race.
func (r Race) String() string {
	k := func(w bool) string {
		if w {
			return "W"
		}
		return "R"
	}
	return fmt.Sprintf("race @%d: %s(node %d, t%d) vs %s(node %d, t%d)",
		r.Addr, k(r.WriteA), r.NodeA, r.TidA, k(r.WriteB), r.NodeB, r.TidB)
}

// access is one recorded access epoch: who, at what clock, at which
// source node.
type access struct {
	tid  int
	clk  uint32
	node ast.NodeID
}

// RaceChecker is the common surface of both checker implementations: a VM
// observer (batched sink, with the legacy per-call hooks kept for direct
// embedding in tests) that accumulates race verdicts.
type RaceChecker interface {
	vm.EventSink
	vm.TraceHook
	vm.SyncEventHook
	Races() []Race
	RaceCount() int
}

var (
	_ RaceChecker = (*EpochChecker)(nil)
	_ RaceChecker = (*VectorChecker)(nil)
)

// ---------------------------------------------------------------------------
// Shared happens-before state

// hbState maintains the thread and sync-object vector clocks of the
// extended synchronization set. Both checkers delegate to it, so the
// happens-before relation — including the documented loop-lock
// lock-identity granularity — is identical by construction.
type hbState struct {
	vcs   []VC
	objVC map[vm.SyncKey]VC
}

func newHBState() hbState {
	return hbState{objVC: make(map[vm.SyncKey]VC)}
}

func (h *hbState) vc(tid int) *VC {
	for len(h.vcs) <= tid {
		t := len(h.vcs)
		v := make(VC, t+1)
		v[t] = 1
		h.vcs = append(h.vcs, v)
	}
	return &h.vcs[tid]
}

func (h *hbState) tick(tid int) {
	v := h.vc(tid)
	v.ensure(tid + 1)
	(*v)[tid]++
}

// clockOf returns thread tid's own component of its clock.
func (h *hbState) clockOf(tid int) uint32 {
	v := *h.vc(tid)
	if tid < len(v) {
		return v[tid]
	}
	return 0
}

// syncEvent maintains the happens-before relation of the extended
// synchronization set (original sync + weak-locks + spawn/join).
func (h *hbState) syncEvent(key vm.SyncKey, kind vm.SyncEventKind, tid int) {
	switch kind {
	case vm.EvAcquire, vm.EvWLAcquire, vm.EvCondWake, vm.EvBarrierRelease:
		// Acquire-like: thread joins the object's clock.
		if o, ok := h.objVC[key]; ok {
			h.vc(tid).join(o)
		}

	case vm.EvRelease, vm.EvWLRelease, vm.EvWLForcedRelease,
		vm.EvCondSignal, vm.EvCondBcast, vm.EvBarrierArrive:
		// Release-like: object joins the thread's clock; thread advances.
		o := h.objVC[key]
		o.join(*h.vc(tid))
		h.objVC[key] = o
		h.tick(tid)

	case vm.EvCondWait:
		// The mutex release is delivered separately; the wait itself
		// contributes no extra edge.

	case vm.EvSpawn:
		// key.ID is the child tid: child starts after the parent's
		// current point.
		child := int(key.ID)
		h.vc(child).join(*h.vc(tid))
		h.tick(child) // child's own component
		h.tick(tid)

	case vm.EvJoin:
		child := int(key.ID)
		h.vc(tid).join(*h.vc(child))
	}
}

// ---------------------------------------------------------------------------
// Shared race reporting

// reporter deduplicates and retains race verdicts by (node, node) pair.
type reporter struct {
	races   []Race
	seen    map[[2]ast.NodeID]bool
	maxRace int
}

func newReporter(maxRaces int) reporter {
	if maxRaces == 0 {
		maxRaces = 10000
	}
	return reporter{seen: make(map[[2]ast.NodeID]bool), maxRace: maxRaces}
}

func (rp *reporter) report(addr int64, prev access, prevW bool, cur access, curW bool) {
	a, b := prev.node, cur.node
	if a > b {
		a, b = b, a
	}
	key := [2]ast.NodeID{a, b}
	if rp.seen[key] || len(rp.races) >= rp.maxRace {
		return
	}
	rp.seen[key] = true
	rp.races = append(rp.races, Race{
		Addr:  addr,
		NodeA: prev.node, NodeB: cur.node,
		TidA: prev.tid, TidB: cur.tid,
		WriteA: prevW, WriteB: curW,
	})
}

// sorted returns the distinct races, ordered by node pair.
func (rp *reporter) sorted() []Race {
	out := append([]Race{}, rp.races...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].NodeA != out[j].NodeA {
			return out[i].NodeA < out[j].NodeA
		}
		return out[i].NodeB < out[j].NodeB
	})
	return out
}

// ---------------------------------------------------------------------------
// VectorChecker: the full-vector oracle

// vcCell is the full shadow state of one address: the last write and the
// latest read of every thread since that write.
type vcCell struct {
	write access
	hasW  bool
	reads []access
}

// VectorChecker is the original full-vector happens-before checker, kept
// as the differential-testing oracle for EpochChecker. Every access does
// full vector-clock work against the complete read set; verdicts are the
// reference semantics.
type VectorChecker struct {
	hb     hbState
	shadow map[int64]*vcCell
	rep    reporter
}

// NewVectorChecker returns the full-vector oracle checker; at most
// maxRaces distinct (node, node) races are retained (0 means a generous
// default).
func NewVectorChecker(maxRaces int) *VectorChecker {
	return &VectorChecker{
		hb:     newHBState(),
		shadow: make(map[int64]*vcCell),
		rep:    newReporter(maxRaces),
	}
}

// Races returns the distinct races found, ordered.
func (c *VectorChecker) Races() []Race { return c.rep.sorted() }

// RaceCount returns the number of distinct races.
func (c *VectorChecker) RaceCount() int { return len(c.rep.races) }

// Access implements vm.TraceHook.
func (c *VectorChecker) Access(tid int, addr int64, write bool, node ast.NodeID, clock int64) {
	v := *c.hb.vc(tid)
	cur := access{tid: tid, clk: c.hb.clockOf(tid), node: node}

	s, ok := c.shadow[addr]
	if !ok {
		s = &vcCell{}
		c.shadow[addr] = s
	}

	if write {
		if s.hasW && s.write.tid != tid && !v.covers(s.write.tid, s.write.clk) {
			c.rep.report(addr, s.write, true, cur, true)
		}
		for _, rd := range s.reads {
			if rd.tid != tid && !v.covers(rd.tid, rd.clk) {
				c.rep.report(addr, rd, false, cur, true)
			}
		}
		s.write = cur
		s.hasW = true
		s.reads = s.reads[:0]
		return
	}
	if s.hasW && s.write.tid != tid && !v.covers(s.write.tid, s.write.clk) {
		c.rep.report(addr, s.write, true, cur, false)
	}
	// Keep at most one read epoch per thread (the latest).
	for i := range s.reads {
		if s.reads[i].tid == tid {
			s.reads[i] = cur
			return
		}
	}
	s.reads = append(s.reads, cur)
}

// SyncEvent implements vm.SyncEventHook.
func (c *VectorChecker) SyncEvent(key vm.SyncKey, kind vm.SyncEventKind, tid int, clock int64) {
	c.hb.syncEvent(key, kind, tid)
}

// Drain implements vm.EventSink.
func (c *VectorChecker) Drain(events []vm.Event) {
	for i := range events {
		e := &events[i]
		switch e.Kind {
		case vm.EventRead:
			c.Access(int(e.Tid), e.Addr, false, e.Node, e.Clock)
		case vm.EventWrite:
			c.Access(int(e.Tid), e.Addr, true, e.Node, e.Clock)
		case vm.EventSync:
			c.hb.syncEvent(e.Key(), e.Sync, int(e.Tid))
		}
	}
}
