// Package trace implements a dynamic happens-before data-race checker over
// the VM's access and sync-event streams, in the style of vector-clock
// detectors (FastTrack-like, but with full vectors for simplicity — the
// simulated programs are small).
//
// Its role in the reproduction is validation: the checker must find races
// in the original benchmarks, and must find *none* in the
// Chimera-instrumented versions under the extended synchronization set —
// the paper's core claim that "programs transformed by Chimera are
// data-race-free under the new set of synchronization operations".
//
// One approximation is inherited from the weak-lock design: two loop-locks
// holders with disjoint address ranges exchange no happens-before edge in
// reality, but this checker joins on the lock identity. That is the same
// granularity at which the recorder logs, so "race-free under the new sync
// set" is checked at exactly the level the replay guarantee needs.
package trace

import (
	"fmt"
	"sort"

	"repro/internal/minic/ast"
	"repro/internal/vm"
)

// VC is a vector clock.
type VC []uint32

func (v VC) clone() VC {
	n := make(VC, len(v))
	copy(n, v)
	return n
}

func (v *VC) ensure(n int) {
	for len(*v) < n {
		*v = append(*v, 0)
	}
}

// join sets v = max(v, o) pointwise.
func (v *VC) join(o VC) {
	v.ensure(len(o))
	for i, c := range o {
		if c > (*v)[i] {
			(*v)[i] = c
		}
	}
}

// leq reports whether epoch (tid, clk) happens-before-or-equals v.
func (v VC) covers(tid int, clk uint32) bool {
	if tid >= len(v) {
		return clk == 0
	}
	return clk <= v[tid]
}

// Race is one detected data race.
type Race struct {
	Addr         int64
	NodeA, NodeB ast.NodeID
	TidA, TidB   int
	WriteA       bool
	WriteB       bool
}

// String renders the race.
func (r Race) String() string {
	k := func(w bool) string {
		if w {
			return "W"
		}
		return "R"
	}
	return fmt.Sprintf("race @%d: %s(node %d, t%d) vs %s(node %d, t%d)",
		r.Addr, k(r.WriteA), r.NodeA, r.TidA, k(r.WriteB), r.NodeB, r.TidB)
}

type access struct {
	tid  int
	clk  uint32
	node ast.NodeID
}

type cell struct {
	write access
	hasW  bool
	reads []access
}

// Checker implements vm.TraceHook and vm.SyncEventHook.
type Checker struct {
	vcs    []VC
	objVC  map[vm.SyncKey]VC
	shadow map[int64]*cell

	races   []Race
	seen    map[[2]ast.NodeID]bool
	maxRace int
}

// NewChecker returns a checker; at most maxRaces distinct (node, node)
// races are retained (0 means a generous default).
func NewChecker(maxRaces int) *Checker {
	if maxRaces == 0 {
		maxRaces = 10000
	}
	return &Checker{
		objVC:   make(map[vm.SyncKey]VC),
		shadow:  make(map[int64]*cell),
		seen:    make(map[[2]ast.NodeID]bool),
		maxRace: maxRaces,
	}
}

// Races returns the distinct races found, ordered.
func (c *Checker) Races() []Race {
	out := append([]Race{}, c.races...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].NodeA != out[j].NodeA {
			return out[i].NodeA < out[j].NodeA
		}
		return out[i].NodeB < out[j].NodeB
	})
	return out
}

// RaceCount returns the number of distinct races.
func (c *Checker) RaceCount() int { return len(c.races) }

func (c *Checker) vc(tid int) *VC {
	for len(c.vcs) <= tid {
		t := len(c.vcs)
		v := make(VC, t+1)
		v[t] = 1
		c.vcs = append(c.vcs, v)
	}
	return &c.vcs[tid]
}

func (c *Checker) tick(tid int) {
	v := c.vc(tid)
	v.ensure(tid + 1)
	(*v)[tid]++
}

func (c *Checker) report(addr int64, prev access, prevW bool, cur access, curW bool) {
	a, b := prev.node, cur.node
	if a > b {
		a, b = b, a
	}
	key := [2]ast.NodeID{a, b}
	if c.seen[key] || len(c.races) >= c.maxRace {
		return
	}
	c.seen[key] = true
	c.races = append(c.races, Race{
		Addr:  addr,
		NodeA: prev.node, NodeB: cur.node,
		TidA: prev.tid, TidB: cur.tid,
		WriteA: prevW, WriteB: curW,
	})
}

// Access implements vm.TraceHook.
func (c *Checker) Access(tid int, addr int64, write bool, node ast.NodeID, clock int64) {
	v := *c.vc(tid)
	clk := uint32(0)
	if tid < len(v) {
		clk = v[tid]
	}
	cur := access{tid: tid, clk: clk, node: node}

	s, ok := c.shadow[addr]
	if !ok {
		s = &cell{}
		c.shadow[addr] = s
	}

	if write {
		if s.hasW && s.write.tid != tid && !v.covers(s.write.tid, s.write.clk) {
			c.report(addr, s.write, true, cur, true)
		}
		for _, rd := range s.reads {
			if rd.tid != tid && !v.covers(rd.tid, rd.clk) {
				c.report(addr, rd, false, cur, true)
			}
		}
		s.write = cur
		s.hasW = true
		s.reads = s.reads[:0]
		return
	}
	if s.hasW && s.write.tid != tid && !v.covers(s.write.tid, s.write.clk) {
		c.report(addr, s.write, true, cur, false)
	}
	// Keep at most one read epoch per thread (the latest).
	for i := range s.reads {
		if s.reads[i].tid == tid {
			s.reads[i] = cur
			return
		}
	}
	s.reads = append(s.reads, cur)
}

// SyncEvent implements vm.SyncEventHook, maintaining the happens-before
// relation of the extended synchronization set.
func (c *Checker) SyncEvent(key vm.SyncKey, kind vm.SyncEventKind, tid int, clock int64) {
	switch kind {
	case vm.EvAcquire, vm.EvWLAcquire, vm.EvCondWake, vm.EvBarrierRelease:
		// Acquire-like: thread joins the object's clock.
		if o, ok := c.objVC[key]; ok {
			c.vc(tid).join(o)
		}

	case vm.EvRelease, vm.EvWLRelease, vm.EvWLForcedRelease,
		vm.EvCondSignal, vm.EvCondBcast, vm.EvBarrierArrive:
		// Release-like: object joins the thread's clock; thread advances.
		o := c.objVC[key]
		o.join(*c.vc(tid))
		c.objVC[key] = o
		c.tick(tid)

	case vm.EvCondWait:
		// The mutex release is delivered separately; the wait itself
		// contributes no extra edge.

	case vm.EvSpawn:
		// key.ID is the child tid: child starts after the parent's
		// current point.
		child := int(key.ID)
		c.vc(child).join(*c.vc(tid))
		c.tick(int(key.ID)) // child's own component
		c.tick(tid)

	case vm.EvJoin:
		child := int(key.ID)
		c.vc(tid).join(*c.vc(child))
	}
}
