package trace

import (
	"testing"

	"repro/internal/minic/parser"
	"repro/internal/minic/types"
	"repro/internal/oskit"
	"repro/internal/vm"
	"repro/internal/weaklock"
)

func runChecked(t *testing.T, src string, seed uint64) *EpochChecker {
	t.Helper()
	f := parser.MustParse("t.mc", src)
	info := types.MustCheck(f)
	p, err := vm.Compile(info)
	if err != nil {
		t.Fatal(err)
	}
	chk := NewChecker(0)
	w := oskit.NewWorld(1)
	r := vm.Run(p, vm.Config{
		Inputs: vm.LiveInputs{OS: w}, Seed: seed,
		Trace: chk, SyncEvents: chk,
	})
	if r.Err != nil {
		t.Fatalf("run: %v", r.Err)
	}
	return chk
}

func TestDetectsUnprotectedRace(t *testing.T) {
	chk := runChecked(t, `
int g;
void worker(int n) { g = g + n; }
int main(void) {
    int t1 = spawn(worker, 1);
    int t2 = spawn(worker, 2);
    join(t1); join(t2);
    return g;
}
`, 0)
	if chk.RaceCount() == 0 {
		t.Fatalf("missed the obvious write-write race")
	}
}

func TestMutexOrdersAccesses(t *testing.T) {
	chk := runChecked(t, `
int m;
int g;
void worker(int n) {
    for (int i = 0; i < 50; i++) {
        lock(&m);
        g = g + n;
        unlock(&m);
    }
}
int main(void) {
    int t1 = spawn(worker, 1);
    int t2 = spawn(worker, 2);
    join(t1); join(t2);
    return 0;
}
`, 3)
	if chk.RaceCount() != 0 {
		t.Fatalf("false positive under mutex: %v", chk.Races()[0])
	}
}

func TestForkJoinOrders(t *testing.T) {
	chk := runChecked(t, `
int g;
void worker(int n) { g = n; }
int main(void) {
    g = 1;
    int t1 = spawn(worker, 2);
    join(t1);
    g = 3;
    int t2 = spawn(worker, 4);
    join(t2);
    return g;
}
`, 1)
	if chk.RaceCount() != 0 {
		t.Fatalf("fork/join must order accesses: %v", chk.Races()[0])
	}
}

func TestBarrierOrders(t *testing.T) {
	chk := runChecked(t, `
int bar;
int a;
int b;
void worker(int id) {
    if (id == 0) { a = 1; }
    barrier_wait(&bar);
    if (id == 1) { b = a; }
    barrier_wait(&bar);
    if (id == 0) { a = b; }
}
int main(void) {
    barrier_init(&bar, 2);
    int t1 = spawn(worker, 0);
    int t2 = spawn(worker, 1);
    join(t1); join(t2);
    return 0;
}
`, 5)
	if chk.RaceCount() != 0 {
		t.Fatalf("barrier must order phase accesses: %v", chk.Races()[0])
	}
}

func TestCondVarOrders(t *testing.T) {
	chk := runChecked(t, `
int m;
int cv;
int ready;
int data;
void producer(int x) {
    data = 42;
    lock(&m);
    ready = 1;
    cond_signal(&cv);
    unlock(&m);
}
int main(void) {
    int t1 = spawn(producer, 0);
    lock(&m);
    while (ready == 0) { cond_wait(&cv, &m); }
    unlock(&m);
    print(data);
    join(t1);
    return 0;
}
`, 2)
	// data is written before the (release of the) lock and read after the
	// wait: ordered by the mutex + condvar.
	if chk.RaceCount() != 0 {
		t.Fatalf("condvar handoff must be ordered: %v", chk.Races()[0])
	}
}

func TestReadReadNotARace(t *testing.T) {
	chk := runChecked(t, `
int table[8];
int m;
int sum;
void worker(int id) {
    int s = 0;
    for (int i = 0; i < 8; i++) { s += table[i]; }
    lock(&m);
    sum += s;
    unlock(&m);
}
int main(void) {
    for (int i = 0; i < 8; i++) { table[i] = i; }
    int t1 = spawn(worker, 1);
    int t2 = spawn(worker, 2);
    join(t1); join(t2);
    return sum;
}
`, 7)
	if chk.RaceCount() != 0 {
		t.Fatalf("read-read sharing is not a race: %v", chk.Races()[0])
	}
}

func TestWeakLockOrders(t *testing.T) {
	// Weak-locks are synchronization for the checker: the same racy
	// counter under wl_acquire/wl_release must be race-free.
	src := `
int g;
void worker(int n) {
    for (int i = 0; i < 20; i++) {
        wl_acquire(3, 0, -4611686018427387904, 4611686018427387904);
        g = g + n;
        wl_release(3, 0);
    }
}
int main(void) {
    int t1 = spawn(worker, 1);
    int t2 = spawn(worker, 2);
    join(t1); join(t2);
    return g;
}
`
	f := parser.MustParse("t.mc", src)
	info := types.MustCheck(f)
	p, err := vm.Compile(info)
	if err != nil {
		t.Fatal(err)
	}
	tbl := weaklock.NewTable()
	tbl.Add(weaklock.KindInstr, "t", false)
	chk := NewChecker(0)
	w := oskit.NewWorld(1)
	r := vm.Run(p, vm.Config{
		Inputs: vm.LiveInputs{OS: w}, Seed: 4,
		Trace: chk, SyncEvents: chk, WL: tbl,
	})
	if r.Err != nil {
		t.Fatalf("run: %v", r.Err)
	}
	if chk.RaceCount() != 0 {
		t.Fatalf("weak-lock must order accesses: %v", chk.Races()[0])
	}
}
