package trace

import "repro/internal/minic/ast"

// VerdictSet canonicalizes a checker's races to the deduplicated,
// order-normalized (node, node) pair set — the equivalence the
// epoch-vs-vector differential layer pins. Two checkers agree exactly
// when their VerdictSets are equal: which of a pair's two symmetric
// attributions gets reported first is schedule bookkeeping, not a
// verdict.
func VerdictSet(races []Race) map[[2]ast.NodeID]bool {
	out := make(map[[2]ast.NodeID]bool, len(races))
	for _, r := range races {
		a, b := r.NodeA, r.NodeB
		if a > b {
			a, b = b, a
		}
		out[[2]ast.NodeID{a, b}] = true
	}
	return out
}

// SameVerdicts reports whether two race lists describe the same verdict
// set.
func SameVerdicts(a, b []Race) bool {
	sa, sb := VerdictSet(a), VerdictSet(b)
	if len(sa) != len(sb) {
		return false
	}
	for k := range sa {
		if !sb[k] {
			return false
		}
	}
	return true
}
