package vm

import (
	"fmt"

	"repro/internal/minic/ast"
	"repro/internal/minic/token"
	"repro/internal/minic/types"
)

// CompileError is a code-generation error at a source position.
type CompileError struct {
	Pos token.Pos
	Msg string
}

// Error implements the error interface.
func (e *CompileError) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Compile lowers a type-checked MiniC file to VM bytecode.
func Compile(info *types.Info) (*Program, error) {
	c := &compiler{
		info: info,
		prog: &Program{
			Info:       info,
			FuncIdx:    make(map[string]int),
			GlobalAddr: make(map[*types.Object]int64),
			StringAddr: make(map[string]int64),
		},
	}
	if err := c.layoutGlobals(); err != nil {
		return nil, err
	}
	for i, fi := range info.FuncList {
		c.prog.FuncIdx[fi.Name] = i
	}
	for _, fi := range info.FuncList {
		fc, err := c.compileFunc(fi)
		if err != nil {
			return nil, err
		}
		c.prog.Funcs = append(c.prog.Funcs, fc)
	}
	if err := c.initGlobals(); err != nil {
		return nil, err
	}
	if _, ok := c.prog.FuncIdx["main"]; !ok {
		return nil, &CompileError{Msg: "program has no main function"}
	}
	return c.prog, nil
}

// MustCompile compiles and panics on error; for tests and builtin programs.
func MustCompile(info *types.Info) *Program {
	p, err := Compile(info)
	if err != nil {
		panic(fmt.Sprintf("vm.MustCompile(%s): %v", info.File.Name, err))
	}
	return p
}

type compiler struct {
	info *types.Info
	prog *Program

	// per-function state
	fn      *types.FuncInfo
	code    []Instr
	offsets map[*types.Object]int64
	breaks  []int // patch targets for break
	conts   []int // patch targets for continue
	loopTop []int
}

func (c *compiler) errf(n ast.Node, format string, args ...any) error {
	return &CompileError{Pos: n.Pos(), Msg: fmt.Sprintf(format, args...)}
}

// layoutGlobals assigns addresses to globals and string literals.
func (c *compiler) layoutGlobals() error {
	addr := int64(GlobalBase)
	for _, g := range c.info.Globals {
		c.prog.GlobalAddr[g] = addr
		addr += g.Type.Size()
	}
	// Pre-size the image for globals; strings are appended.
	c.prog.GlobalWords = make([]int64, addr-GlobalBase)
	for _, sl := range c.info.Strings {
		if _, ok := c.prog.StringAddr[sl.Value]; ok {
			continue
		}
		c.prog.StringAddr[sl.Value] = addr
		for i := 0; i < len(sl.Value); i++ {
			c.prog.GlobalWords = append(c.prog.GlobalWords, int64(sl.Value[i]))
		}
		c.prog.GlobalWords = append(c.prog.GlobalWords, 0) // NUL
		addr += int64(len(sl.Value) + 1)
	}
	c.prog.HeapBase = addr
	return nil
}

// initGlobals evaluates global initializers, which must be compile-time
// constants (integers, sizeof, string addresses, addresses of globals and
// functions, and arithmetic over those).
func (c *compiler) initGlobals() error {
	for _, g := range c.info.Globals {
		vd, ok := g.Decl.(*ast.VarDecl)
		if !ok || vd.Init == nil {
			continue
		}
		v, err := c.constEval(vd.Init)
		if err != nil {
			return err
		}
		c.prog.GlobalWords[c.prog.GlobalAddr[g]-GlobalBase] = v
	}
	return nil
}

// constEval evaluates a compile-time constant expression.
func (c *compiler) constEval(e ast.Expr) (int64, error) {
	switch e := e.(type) {
	case *ast.IntLit:
		return e.Value, nil
	case *ast.StringLit:
		return c.prog.StringAddr[e.Value], nil
	case *ast.Sizeof:
		return c.sizeofType(e), nil
	case *ast.Ident:
		o := c.info.Uses[e.ID()]
		if o != nil && o.Kind == types.ObjFunc {
			return FuncValue(c.prog.FuncIdx[o.Name]), nil
		}
		return 0, c.errf(e, "global initializer must be constant (use of %s)", e.Name)
	case *ast.Unary:
		switch e.Op {
		case token.MINUS:
			v, err := c.constEval(e.X)
			if err != nil {
				return 0, err
			}
			return -v, nil
		case token.NOT:
			v, err := c.constEval(e.X)
			if err != nil {
				return 0, err
			}
			if v == 0 {
				return 1, nil
			}
			return 0, nil
		case token.AMP:
			if id, ok := e.X.(*ast.Ident); ok {
				o := c.info.Uses[id.ID()]
				if o != nil && o.Kind == types.ObjGlobal {
					return c.prog.GlobalAddr[o], nil
				}
				if o != nil && o.Kind == types.ObjFunc {
					return FuncValue(c.prog.FuncIdx[o.Name]), nil
				}
			}
			return 0, c.errf(e, "global initializer: cannot take constant address")
		}
		return 0, c.errf(e, "global initializer must be constant")
	case *ast.Binary:
		x, err := c.constEval(e.X)
		if err != nil {
			return 0, err
		}
		y, err := c.constEval(e.Y)
		if err != nil {
			return 0, err
		}
		v, err2 := evalBinop(e.Op, x, y)
		if err2 != nil {
			return 0, c.errf(e, "global initializer: %v", err2)
		}
		return v, nil
	}
	return 0, c.errf(e, "global initializer must be constant")
}

func (c *compiler) sizeofType(e *ast.Sizeof) int64 {
	t := e.Type
	if t.Stars > 0 {
		return 1
	}
	switch t.Kind {
	case ast.TypeInt:
		return 1
	case ast.TypeVoid:
		return 0
	case ast.TypeStruct:
		if si := c.info.Structs[t.StructName]; si != nil {
			return si.Size
		}
	}
	return 1
}

func evalBinop(op token.Kind, x, y int64) (int64, error) {
	b2i := func(b bool) int64 {
		if b {
			return 1
		}
		return 0
	}
	switch op {
	case token.PLUS:
		return x + y, nil
	case token.MINUS:
		return x - y, nil
	case token.STAR:
		return x * y, nil
	case token.SLASH:
		if y == 0 {
			return 0, fmt.Errorf("division by zero")
		}
		return x / y, nil
	case token.PERCENT:
		if y == 0 {
			return 0, fmt.Errorf("division by zero")
		}
		return x % y, nil
	case token.SHL:
		return x << uint64(y&63), nil
	case token.SHR:
		return x >> uint64(y&63), nil
	case token.AMP:
		return x & y, nil
	case token.PIPE:
		return x | y, nil
	case token.CARET:
		return x ^ y, nil
	case token.EQ:
		return b2i(x == y), nil
	case token.NEQ:
		return b2i(x != y), nil
	case token.LT:
		return b2i(x < y), nil
	case token.LE:
		return b2i(x <= y), nil
	case token.GT:
		return b2i(x > y), nil
	case token.GE:
		return b2i(x >= y), nil
	case token.LAND:
		return b2i(x != 0 && y != 0), nil
	case token.LOR:
		return b2i(x != 0 || y != 0), nil
	}
	return 0, fmt.Errorf("bad operator %s", op)
}

// ---------------------------------------------------------------------------
// Function compilation

func (c *compiler) compileFunc(fi *types.FuncInfo) (*FuncCode, error) {
	c.fn = fi
	c.code = nil
	c.offsets = make(map[*types.Object]int64)
	c.breaks, c.conts = nil, nil

	off := int64(0)
	for _, p := range fi.Params {
		c.offsets[p] = off
		off++ // parameters are scalars
	}
	for _, l := range fi.Locals {
		c.offsets[l] = off
		off += l.Type.Size()
	}

	if err := c.stmt(fi.Decl.Body); err != nil {
		return nil, err
	}
	// Implicit return at the end: 0 for value functions.
	if fi.Sig.Ret.Kind == types.Void {
		c.emit(Instr{Op: OpRetVoid})
	} else {
		c.emit(Instr{Op: OpConst, Val: 0})
		c.emit(Instr{Op: OpRet})
	}

	return &FuncCode{
		Name:        fi.Name,
		Index:       c.prog.FuncIdx[fi.Name],
		NParams:     len(fi.Params),
		FrameWords:  off,
		RetVoid:     fi.Sig.Ret.Kind == types.Void,
		Code:        c.code,
		LocalOffset: c.offsets,
	}, nil
}

func (c *compiler) emit(i Instr) int {
	c.code = append(c.code, i)
	return len(c.code) - 1
}

func (c *compiler) here() int64 { return int64(len(c.code)) }

func (c *compiler) patch(at int, target int64) { c.code[at].Val = target }

func (c *compiler) stmt(s ast.Stmt) error {
	switch s := s.(type) {
	case *ast.Block:
		for _, st := range s.Stmts {
			if err := c.stmt(st); err != nil {
				return err
			}
		}
		return nil

	case *ast.DeclStmt:
		o := c.info.Objects[s.Decl.ID()]
		if o == nil {
			return c.errf(s, "internal: unresolved local %s", s.Decl.Name)
		}
		if s.Decl.Init != nil {
			c.emit(Instr{Op: OpAddrL, Val: c.offsets[o], Node: s.Decl.ID()})
			if err := c.rvalue(s.Decl.Init); err != nil {
				return err
			}
			c.emit(Instr{Op: OpStore, Node: s.Decl.ID()})
		}
		return nil

	case *ast.AssignStmt:
		if err := c.lvalueAddr(s.LHS); err != nil {
			return err
		}
		if s.Op == token.ASSIGN {
			if err := c.rvalue(s.RHS); err != nil {
				return err
			}
			c.emit(Instr{Op: OpStore, Node: s.LHS.ID()})
			return nil
		}
		// Compound assignment: addr; dup; load; rhs; op; store.
		c.emit(Instr{Op: OpDup})
		c.emit(Instr{Op: OpLoad, Node: s.LHS.ID()})
		if err := c.rvalue(s.RHS); err != nil {
			return err
		}
		var op Op
		switch s.Op {
		case token.ADD_ASSIGN:
			op = OpAdd
		case token.SUB_ASSIGN:
			op = OpSub
		case token.MUL_ASSIGN:
			op = OpMul
		case token.DIV_ASSIGN:
			op = OpDiv
		case token.MOD_ASSIGN:
			op = OpMod
		default:
			return c.errf(s, "bad compound assignment %s", s.Op)
		}
		// Pointer compound add/sub scales like pointer arithmetic.
		lt := c.info.Types[s.LHS.ID()]
		if lt != nil && lt.Kind == types.Ptr && (op == OpAdd || op == OpSub) {
			if sz := lt.Elem.Size(); sz != 1 {
				c.emit(Instr{Op: OpConst, Val: sz})
				c.emit(Instr{Op: OpMul})
			}
		}
		c.emit(Instr{Op: op, Node: s.ID()})
		c.emit(Instr{Op: OpStore, Node: s.LHS.ID()})
		return nil

	case *ast.IncDecStmt:
		if err := c.lvalueAddr(s.X); err != nil {
			return err
		}
		c.emit(Instr{Op: OpDup})
		c.emit(Instr{Op: OpLoad, Node: s.X.ID()})
		delta := int64(1)
		lt := c.info.Types[s.X.ID()]
		if lt != nil && lt.Kind == types.Ptr {
			delta = lt.Elem.Size()
		}
		c.emit(Instr{Op: OpConst, Val: delta})
		if s.Op == token.INC {
			c.emit(Instr{Op: OpAdd, Node: s.ID()})
		} else {
			c.emit(Instr{Op: OpSub, Node: s.ID()})
		}
		c.emit(Instr{Op: OpStore, Node: s.X.ID()})
		return nil

	case *ast.ExprStmt:
		call, ok := s.X.(*ast.Call)
		if !ok {
			// Pure expression statement: evaluate and discard.
			if err := c.rvalue(s.X); err != nil {
				return err
			}
			c.emit(Instr{Op: OpPop})
			return nil
		}
		if err := c.call(call); err != nil {
			return err
		}
		if producesValue(c.callRetType(call)) {
			c.emit(Instr{Op: OpPop})
		}
		return nil

	case *ast.IfStmt:
		if err := c.rvalue(s.CondE); err != nil {
			return err
		}
		jz := c.emit(Instr{Op: OpJz, Node: s.ID()})
		if err := c.stmt(s.Then); err != nil {
			return err
		}
		if s.Else == nil {
			c.patch(jz, c.here())
			return nil
		}
		jend := c.emit(Instr{Op: OpJmp})
		c.patch(jz, c.here())
		if err := c.stmt(s.Else); err != nil {
			return err
		}
		c.patch(jend, c.here())
		return nil

	case *ast.WhileStmt:
		top := c.here()
		if err := c.rvalue(s.CondE); err != nil {
			return err
		}
		jz := c.emit(Instr{Op: OpJz, Node: s.ID()})
		savedB, savedC := c.breaks, c.conts
		c.breaks, c.conts = nil, nil
		if err := c.stmt(s.Body); err != nil {
			return err
		}
		for _, at := range c.conts {
			c.patch(at, top)
		}
		c.emit(Instr{Op: OpJmp, Val: top})
		end := c.here()
		c.patch(jz, end)
		for _, at := range c.breaks {
			c.patch(at, end)
		}
		c.breaks, c.conts = savedB, savedC
		return nil

	case *ast.ForStmt:
		if s.Init != nil {
			if err := c.stmt(s.Init); err != nil {
				return err
			}
		}
		top := c.here()
		var jz int = -1
		if s.CondE != nil {
			if err := c.rvalue(s.CondE); err != nil {
				return err
			}
			jz = c.emit(Instr{Op: OpJz, Node: s.ID()})
		}
		savedB, savedC := c.breaks, c.conts
		c.breaks, c.conts = nil, nil
		if err := c.stmt(s.Body); err != nil {
			return err
		}
		postAt := c.here()
		for _, at := range c.conts {
			c.patch(at, postAt)
		}
		if s.Post != nil {
			if err := c.stmt(s.Post); err != nil {
				return err
			}
		}
		c.emit(Instr{Op: OpJmp, Val: top})
		end := c.here()
		if jz >= 0 {
			c.patch(jz, end)
		}
		for _, at := range c.breaks {
			c.patch(at, end)
		}
		c.breaks, c.conts = savedB, savedC
		return nil

	case *ast.ReturnStmt:
		if s.X == nil {
			c.emit(Instr{Op: OpRetVoid, Node: s.ID()})
			return nil
		}
		if err := c.rvalue(s.X); err != nil {
			return err
		}
		c.emit(Instr{Op: OpRet, Node: s.ID()})
		return nil

	case *ast.BreakStmt:
		at := c.emit(Instr{Op: OpJmp, Node: s.ID()})
		c.breaks = append(c.breaks, at)
		return nil

	case *ast.ContinueStmt:
		at := c.emit(Instr{Op: OpJmp, Node: s.ID()})
		c.conts = append(c.conts, at)
		return nil
	}
	return c.errf(s, "internal: unknown statement type %T", s)
}

func producesValue(t *types.Type) bool {
	return t != nil && t.Kind != types.Void
}

func (c *compiler) callRetType(call *ast.Call) *types.Type {
	if t := c.info.Types[call.ID()]; t != nil {
		return t
	}
	return types.IntType
}

// lvalueAddr emits code pushing the address of the lvalue e.
func (c *compiler) lvalueAddr(e ast.Expr) error {
	switch e := e.(type) {
	case *ast.Ident:
		o := c.info.Uses[e.ID()]
		if o == nil {
			return c.errf(e, "internal: unresolved %s", e.Name)
		}
		switch o.Kind {
		case types.ObjGlobal:
			c.emit(Instr{Op: OpConst, Val: c.prog.GlobalAddr[o], Node: e.ID()})
			return nil
		case types.ObjLocal, types.ObjParam:
			c.emit(Instr{Op: OpAddrL, Val: c.offsets[o], Node: e.ID()})
			return nil
		}
		return c.errf(e, "cannot use %s %s as lvalue", o.Kind, e.Name)

	case *ast.Unary:
		if e.Op != token.STAR {
			return c.errf(e, "not an lvalue")
		}
		return c.rvalue(e.X)

	case *ast.Index:
		// Address = base + index*elemsize.
		if err := c.baseAddr(e.X); err != nil {
			return err
		}
		if err := c.rvalue(e.Index); err != nil {
			return err
		}
		elemSize := int64(1)
		if t := c.info.Types[e.ID()]; t != nil {
			elemSize = t.Size()
			if elemSize == 0 {
				elemSize = 1
			}
		}
		if elemSize != 1 {
			c.emit(Instr{Op: OpConst, Val: elemSize})
			c.emit(Instr{Op: OpMul})
		}
		c.emit(Instr{Op: OpAdd, Node: e.ID()})
		return nil

	case *ast.Field:
		var si *types.StructInfo
		xt := c.info.Types[e.X.ID()]
		if e.Arrow {
			if err := c.rvalue(e.X); err != nil {
				return err
			}
			if xt == nil || xt.Kind != types.Ptr || xt.Elem.Kind != types.StructT {
				return c.errf(e, "internal: bad arrow base type")
			}
			si = xt.Elem.Struct
		} else {
			if err := c.lvalueAddr(e.X); err != nil {
				return err
			}
			if xt == nil || xt.Kind != types.StructT {
				return c.errf(e, "internal: bad field base type")
			}
			si = xt.Struct
		}
		fi := si.Field(e.Name)
		if fi == nil {
			return c.errf(e, "internal: missing field %s", e.Name)
		}
		if fi.Offset != 0 {
			c.emit(Instr{Op: OpConst, Val: fi.Offset})
			c.emit(Instr{Op: OpAdd, Node: e.ID()})
		}
		return nil
	}
	return c.errf(e, "not an lvalue")
}

// baseAddr emits code pushing the base address for indexing e: the address
// of an array lvalue, or the value of a pointer expression.
func (c *compiler) baseAddr(e ast.Expr) error {
	t := c.info.Types[e.ID()]
	if t != nil && t.Kind == types.Array {
		return c.lvalueAddr(e)
	}
	return c.rvalue(e)
}

// rvalue emits code pushing the value of e.
func (c *compiler) rvalue(e ast.Expr) error {
	switch e := e.(type) {
	case *ast.IntLit:
		c.emit(Instr{Op: OpConst, Val: e.Value, Node: e.ID()})
		return nil

	case *ast.StringLit:
		c.emit(Instr{Op: OpConst, Val: c.prog.StringAddr[e.Value], Node: e.ID()})
		return nil

	case *ast.Sizeof:
		c.emit(Instr{Op: OpConst, Val: c.sizeofType(e), Node: e.ID()})
		return nil

	case *ast.Ident:
		o := c.info.Uses[e.ID()]
		if o == nil {
			return c.errf(e, "internal: unresolved %s", e.Name)
		}
		switch o.Kind {
		case types.ObjFunc:
			c.emit(Instr{Op: OpConst, Val: FuncValue(c.prog.FuncIdx[o.Name]), Node: e.ID()})
			return nil
		case types.ObjBuiltin:
			return c.errf(e, "builtin %s used as value", o.Name)
		}
		if o.Type.Kind == types.Array || o.Type.Kind == types.StructT {
			// Aggregates decay to their address in value contexts.
			return c.lvalueAddr(e)
		}
		if err := c.lvalueAddr(e); err != nil {
			return err
		}
		c.emit(Instr{Op: OpLoad, Node: e.ID()})
		return nil

	case *ast.Unary:
		switch e.Op {
		case token.MINUS:
			if err := c.rvalue(e.X); err != nil {
				return err
			}
			c.emit(Instr{Op: OpNeg, Node: e.ID()})
			return nil
		case token.NOT:
			if err := c.rvalue(e.X); err != nil {
				return err
			}
			c.emit(Instr{Op: OpNot, Node: e.ID()})
			return nil
		case token.STAR:
			t := c.info.Types[e.ID()]
			if err := c.rvalue(e.X); err != nil {
				return err
			}
			if t != nil && (t.Kind == types.Array || t.Kind == types.StructT || t.Kind == types.FuncT) {
				return nil // address/function value stands for the aggregate
			}
			c.emit(Instr{Op: OpLoad, Node: e.ID()})
			return nil
		case token.AMP:
			if id, ok := e.X.(*ast.Ident); ok {
				if o := c.info.Uses[id.ID()]; o != nil && o.Kind == types.ObjFunc {
					c.emit(Instr{Op: OpConst, Val: FuncValue(c.prog.FuncIdx[o.Name]), Node: e.ID()})
					return nil
				}
			}
			return c.lvalueAddr(e.X)
		}
		return c.errf(e, "bad unary operator")

	case *ast.Binary:
		return c.binary(e)

	case *ast.Cond:
		if err := c.rvalue(e.CondE); err != nil {
			return err
		}
		jz := c.emit(Instr{Op: OpJz, Node: e.ID()})
		if err := c.rvalue(e.Then); err != nil {
			return err
		}
		jend := c.emit(Instr{Op: OpJmp})
		c.patch(jz, c.here())
		if err := c.rvalue(e.Else); err != nil {
			return err
		}
		c.patch(jend, c.here())
		return nil

	case *ast.Index:
		t := c.info.Types[e.ID()]
		if err := c.lvalueAddr(e); err != nil {
			return err
		}
		if t != nil && (t.Kind == types.Array || t.Kind == types.StructT) {
			return nil // aggregate element decays to its address
		}
		c.emit(Instr{Op: OpLoad, Node: e.ID()})
		return nil

	case *ast.Field:
		t := c.info.Types[e.ID()]
		if err := c.lvalueAddr(e); err != nil {
			return err
		}
		if t != nil && (t.Kind == types.Array || t.Kind == types.StructT) {
			return nil
		}
		c.emit(Instr{Op: OpLoad, Node: e.ID()})
		return nil

	case *ast.Call:
		if err := c.call(e); err != nil {
			return err
		}
		if !producesValue(c.callRetType(e)) {
			return c.errf(e, "void call used as value")
		}
		return nil
	}
	return c.errf(e, "internal: unknown expression type %T", e)
}

func (c *compiler) binary(e *ast.Binary) error {
	// Short-circuit operators compile to branches.
	if e.Op == token.LAND || e.Op == token.LOR {
		if err := c.rvalue(e.X); err != nil {
			return err
		}
		var jshort int
		if e.Op == token.LAND {
			jshort = c.emit(Instr{Op: OpJz, Node: e.ID()})
		} else {
			jshort = c.emit(Instr{Op: OpJnz, Node: e.ID()})
		}
		if err := c.rvalue(e.Y); err != nil {
			return err
		}
		// Normalize the right operand to 0/1.
		c.emit(Instr{Op: OpConst, Val: 0})
		c.emit(Instr{Op: OpNe})
		jend := c.emit(Instr{Op: OpJmp})
		c.patch(jshort, c.here())
		if e.Op == token.LAND {
			c.emit(Instr{Op: OpConst, Val: 0})
		} else {
			c.emit(Instr{Op: OpConst, Val: 1})
		}
		c.patch(jend, c.here())
		return nil
	}

	xt := c.info.Types[e.X.ID()]
	yt := c.info.Types[e.Y.ID()]
	if err := c.rvalue(e.X); err != nil {
		return err
	}
	// Pointer arithmetic scaling: ptr + int, int + ptr, ptr - int.
	scale := func(t *types.Type) int64 {
		if t == nil {
			return 1
		}
		switch t.Kind {
		case types.Ptr, types.Array:
			if sz := t.Elem.Size(); sz > 0 {
				return sz
			}
		}
		return 1
	}
	isPtr := func(t *types.Type) bool {
		return t != nil && (t.Kind == types.Ptr || t.Kind == types.Array)
	}
	switch e.Op {
	case token.PLUS:
		if !isPtr(xt) && isPtr(yt) {
			// int + ptr: scale the int side before pushing the pointer.
			if sz := scale(yt); sz != 1 {
				c.emit(Instr{Op: OpConst, Val: sz})
				c.emit(Instr{Op: OpMul})
			}
			if err := c.rvalue(e.Y); err != nil {
				return err
			}
			c.emit(Instr{Op: OpAdd, Node: e.ID()})
			return nil
		}
		if err := c.rvalue(e.Y); err != nil {
			return err
		}
		if isPtr(xt) && !isPtr(yt) {
			if sz := scale(xt); sz != 1 {
				c.emit(Instr{Op: OpConst, Val: sz})
				c.emit(Instr{Op: OpMul})
			}
		}
		c.emit(Instr{Op: OpAdd, Node: e.ID()})
		return nil
	case token.MINUS:
		if err := c.rvalue(e.Y); err != nil {
			return err
		}
		switch {
		case isPtr(xt) && isPtr(yt):
			c.emit(Instr{Op: OpSub, Node: e.ID()})
			if sz := scale(xt); sz != 1 {
				c.emit(Instr{Op: OpConst, Val: sz})
				c.emit(Instr{Op: OpDiv})
			}
			return nil
		case isPtr(xt):
			if sz := scale(xt); sz != 1 {
				c.emit(Instr{Op: OpConst, Val: sz})
				c.emit(Instr{Op: OpMul})
			}
		}
		c.emit(Instr{Op: OpSub, Node: e.ID()})
		return nil
	}

	if err := c.rvalue(e.Y); err != nil {
		return err
	}
	var op Op
	switch e.Op {
	case token.STAR:
		op = OpMul
	case token.SLASH:
		op = OpDiv
	case token.PERCENT:
		op = OpMod
	case token.SHL:
		op = OpShl
	case token.SHR:
		op = OpShr
	case token.AMP:
		op = OpAnd
	case token.PIPE:
		op = OpOr
	case token.CARET:
		op = OpXor
	case token.EQ:
		op = OpEq
	case token.NEQ:
		op = OpNe
	case token.LT:
		op = OpLt
	case token.LE:
		op = OpLe
	case token.GT:
		op = OpGt
	case token.GE:
		op = OpGe
	default:
		return c.errf(e, "bad binary operator %s", e.Op)
	}
	c.emit(Instr{Op: op, Node: e.ID()})
	return nil
}

func (c *compiler) call(e *ast.Call) error {
	// Direct call to a function or builtin.
	if target := c.info.CallTargets[e.ID()]; target != nil {
		for _, a := range e.Args {
			if err := c.rvalue(a); err != nil {
				return err
			}
		}
		if target.Kind == types.ObjBuiltin {
			c.emit(Instr{Op: OpBuiltin, Val: int64(target.Builtin), N: len(e.Args), Node: e.ID()})
			return nil
		}
		c.emit(Instr{Op: OpCall, Val: int64(c.prog.FuncIdx[target.Name]), N: len(e.Args), Node: e.ID()})
		return nil
	}
	// Indirect call: push callee value, then args.
	if err := c.rvalue(e.Fun); err != nil {
		return err
	}
	for _, a := range e.Args {
		if err := c.rvalue(a); err != nil {
			return err
		}
	}
	c.emit(Instr{Op: OpCallI, N: len(e.Args), Node: e.ID()})
	return nil
}
