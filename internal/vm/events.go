package vm

import "repro/internal/minic/ast"

// The event-sink runtime: the interpreter hot loop appends observation
// events (memory accesses and synchronization operations) to a flat
// append-only buffer instead of making an interface call per event, and
// the buffer is drained to every registered EventSink when it fills and at
// quiescence points. Observers pay one interface dispatch per *batch*
// instead of one per memory access, which is what makes always-on dynamic
// checking (the happens-before race checker) affordable on the record and
// replay paths.
//
// Events are delivered in exact program (simulated-interleaving) order:
// the machine is single-threaded, accesses and sync operations share one
// buffer, and a drain never reorders. An observer that replays the stream
// therefore sees precisely what the old per-call hooks saw.

// EventKind discriminates buffered observation events.
type EventKind uint8

// The buffered event kinds.
const (
	// EventRead and EventWrite are shared-memory accesses; Addr, Node,
	// Tid and Clock are valid.
	EventRead EventKind = iota
	EventWrite
	// EventSync is a synchronization operation; Class+Addr form the
	// SyncKey, and Sync carries the operation kind.
	EventSync
)

// Event is one buffered observation. It is a flat union: access events use
// Addr/Node, sync events use Class/Addr (the SyncKey) and Sync.
type Event struct {
	Kind  EventKind
	Sync  SyncEventKind // EventSync only
	Class SyncClass     // EventSync only: SyncKey.Class
	Tid   int32
	Addr  int64 // access address, or SyncKey.ID for EventSync
	Node  ast.NodeID
	Clock int64
}

// Key reconstructs the sync key of an EventSync event.
func (e Event) Key() SyncKey { return SyncKey{Class: e.Class, ID: e.Addr} }

// EventSink consumes batches of observation events in program order. The
// batch slice is reused between drains; implementations must not retain
// it past the call.
type EventSink interface {
	Drain(events []Event)
}

// EventBatchSize is the buffer capacity: large enough to amortize the
// per-batch dispatch, small enough to stay cache-resident.
const EventBatchSize = 4096

// emitAccess buffers one memory access. Callers gate on m.observing so
// un-observed runs pay only a branch.
func (m *machine) emitAccess(tid int, addr int64, write bool, node ast.NodeID, clock int64) {
	k := EventRead
	if write {
		k = EventWrite
	}
	m.events = append(m.events, Event{Kind: k, Tid: int32(tid), Addr: addr, Node: node, Clock: clock})
	if len(m.events) == cap(m.events) {
		m.flushEvents()
	}
}

// emitSync buffers one synchronization operation.
func (m *machine) emitSync(key SyncKey, kind SyncEventKind, tid int, clock int64) {
	m.events = append(m.events, Event{
		Kind: EventSync, Sync: kind, Class: key.Class,
		Tid: int32(tid), Addr: key.ID, Clock: clock,
	})
	if len(m.events) == cap(m.events) {
		m.flushEvents()
	}
}

// flushEvents drains the buffer to every sink, in registration order.
// Emission accounting happens here, once per batch, so the per-event
// emit paths stay counter-free.
func (m *machine) flushEvents() {
	if len(m.events) == 0 {
		return
	}
	m.counters.EventsEmitted += int64(len(m.events))
	m.counters.EventBatches++
	for _, s := range m.sinks {
		s.Drain(m.events)
	}
	m.events = m.events[:0]
}

// hookSink adapts the legacy per-call TraceHook/SyncEventHook observers to
// the batched sink interface, so existing hook implementations keep
// working unchanged behind Config.Trace / Config.SyncEvents.
type hookSink struct {
	trace TraceHook
	syncs SyncEventHook
}

// Drain implements EventSink.
func (h *hookSink) Drain(events []Event) {
	for i := range events {
		e := &events[i]
		switch e.Kind {
		case EventRead:
			if h.trace != nil {
				h.trace.Access(int(e.Tid), e.Addr, false, e.Node, e.Clock)
			}
		case EventWrite:
			if h.trace != nil {
				h.trace.Access(int(e.Tid), e.Addr, true, e.Node, e.Clock)
			}
		case EventSync:
			if h.syncs != nil {
				h.syncs.SyncEvent(e.Key(), e.Sync, int(e.Tid), e.Clock)
			}
		}
	}
}
