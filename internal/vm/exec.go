package vm

import (
	"fmt"
	"hash/fnv"
	"strconv"

	"repro/internal/minic/types"
	"repro/internal/weaklock"
)

// Run executes the program to completion under cfg and returns the result.
// Execution is fully deterministic given (program, cfg.Seed, input world).
func Run(p *Program, cfg Config) *Result {
	m := newMachine(p, cfg)
	m.run()
	return m.result()
}

type tstate int

const (
	tReady tstate = iota
	tBlocked
	tDone
)

type frame struct {
	fn        *FuncCode
	pc        int
	fp        int64
	wantValue bool
}

// resumeKind tracks multi-phase builtin operations across block/wake cycles.
type resumeKind int

const (
	resumeNone       resumeKind = iota
	resumeCondRelock            // woken from cond_wait; must re-acquire the mutex
)

// heldWL is one weak-lock currently held by a thread. Weak-locks are
// reentrant per thread (nested instrumented regions may share a pair's
// lock); depth counts the nesting and the held range is the union of every
// level's range.
type heldWL struct {
	id         weaklock.ID
	kind       weaklock.Kind // granularity of the outermost acquire site
	lo, hi     int64
	depth      int
	acquiredAt int64
}

type thread struct {
	id    int
	state tstate
	clock int64

	frames []frame
	eval   []int64
	sp     int64 // next free stack word
	spBase int64 // bottom of this thread's stack region
	spTop  int64 // exclusive top

	instrCount int64 // executed instructions (replay preemption anchor)
	syncSeq    int64 // committed sync operations (anchor disambiguation)

	// Deterministic-execution state: dc(t) = instrCount + detBoost is the
	// logical clock; detBoost fast-forwards a woken sleeper past its
	// waker; detParked marks threads parked by the arbiter.
	detBoost  int64
	detParked bool

	// Blocking bookkeeping.
	blockStart int64 // clock when the current blocked episode began
	blocking   bool

	// Multi-phase builtin state.
	resume      resumeKind
	condMutex   int64 // mutex to re-acquire after cond_wait
	exitWaiters []*thread

	// Weak-locks currently held, and locks that a forced preemption
	// requires this thread to re-acquire before it may continue.
	held      []heldWL
	reacquire []heldWL

	retVal int64 // thread function's return value, kept for diagnostics
}

func (t *thread) push(v int64) { t.eval = append(t.eval, v) }
func (t *thread) pop() int64 {
	v := t.eval[len(t.eval)-1]
	t.eval = t.eval[:len(t.eval)-1]
	return v
}
func (t *thread) peekN(n int) []int64 { return t.eval[len(t.eval)-n:] }
func (t *thread) popN(n int)          { t.eval = t.eval[:len(t.eval)-n] }

type machine struct {
	prog *Program
	cfg  Config
	cost CostModel

	mem     []int64
	memTop  int64
	heapTop int64

	threads    []*thread
	stackWords int64
	stackBase  int64
	maxThreads int

	mutexes  map[int64]*mutexState
	barriers map[int64]*barrierState
	conds    map[int64]*condState
	wlocks   map[weaklock.ID]*wlLockState

	gateWaiters map[SyncKey][]*thread

	// Event-sink runtime: the hot loop appends to events (a plain slice,
	// no interface dispatch) and flushEvents drains full batches to sinks.
	// observing gates emission so un-observed runs pay only a branch.
	sinks     []EventSink
	events    []Event
	observing bool

	output []byte

	counters Counters
	wlStats  weaklock.Stats
	wlSites  []weaklock.SiteStats // per-lock counters, indexed by ID

	dispatches   uint64
	steps        int64
	maxSteps     int64
	wlTimeout    int64
	detWakeSteps int64

	exited   bool
	exitCode int64
	fatal    error
}

func newMachine(p *Program, cfg Config) *machine {
	if cfg.Cost == (CostModel{}) {
		cfg.Cost = DefaultCost()
	}
	if cfg.MaxSteps == 0 {
		cfg.MaxSteps = 2_000_000_000
	}
	if cfg.StackWords == 0 {
		cfg.StackWords = DefaultStackWords
	}
	if cfg.HeapWords == 0 {
		cfg.HeapWords = DefaultHeapWords
	}
	if cfg.MaxThreads == 0 {
		cfg.MaxThreads = 64
	}
	if cfg.WLTimeout == 0 {
		cfg.WLTimeout = 2_000_000
	}
	heapBase := p.HeapBase
	stackBase := heapBase + cfg.HeapWords
	memTop := stackBase + int64(cfg.MaxThreads)*cfg.StackWords

	m := &machine{
		prog:        p,
		cfg:         cfg,
		cost:        cfg.Cost,
		mem:         make([]int64, memTop),
		memTop:      memTop,
		heapTop:     heapBase,
		stackWords:  cfg.StackWords,
		stackBase:   stackBase,
		maxThreads:  cfg.MaxThreads,
		mutexes:     make(map[int64]*mutexState),
		barriers:    make(map[int64]*barrierState),
		conds:       make(map[int64]*condState),
		wlocks:      make(map[weaklock.ID]*wlLockState),
		gateWaiters: make(map[SyncKey][]*thread),
		maxSteps:    cfg.MaxSteps,
		wlTimeout:   cfg.WLTimeout,
	}
	if cfg.WL != nil {
		m.wlSites = make([]weaklock.SiteStats, cfg.WL.Len())
	}
	m.sinks = append(m.sinks, cfg.Sinks...)
	if cfg.Trace != nil || cfg.SyncEvents != nil {
		m.sinks = append(m.sinks, &hookSink{trace: cfg.Trace, syncs: cfg.SyncEvents})
	}
	if len(m.sinks) > 0 {
		m.observing = true
		m.events = make([]Event, 0, EventBatchSize)
	}
	copy(m.mem[GlobalBase:], p.GlobalWords)
	return m
}

func (m *machine) result() *Result {
	m.flushEvents() // deliver the tail batch before observers are read
	r := &Result{
		Output:   m.output,
		ExitCode: m.exitCode,
		Counters: m.counters,
		WLStats:  m.wlStats,
		WLSites:  m.wlSites,
		Threads:  len(m.threads),
		Err:      m.fatal,
	}
	for _, t := range m.threads {
		if t.clock > r.Makespan {
			r.Makespan = t.clock
		}
	}
	h := fnv.New64a()
	var b [8]byte
	write := func(v int64) {
		putU64(b[:], uint64(v))
		h.Write(b[:])
	}
	for a := int64(GlobalBase); a < m.prog.HeapBase; a++ {
		write(m.mem[a])
	}
	for a := m.prog.HeapBase; a < m.heapTop; a++ {
		write(m.mem[a])
	}
	h.Write(m.output)
	r.MemHash = h.Sum64()
	return r
}

func (m *machine) fail(t *thread, format string, args ...any) {
	if m.fatal == nil {
		tid, clock := -1, int64(0)
		if t != nil {
			tid, clock = t.id, t.clock
		}
		m.fatal = &RunError{Thread: tid, Clock: clock, Msg: fmt.Sprintf(format, args...)}
	}
}

// splitmix64 is the deterministic hash behind scheduling jitter.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func (m *machine) jitter(tid int) uint64 {
	return splitmix64(m.cfg.Seed ^ uint64(tid)*0x9e3779b9 ^ m.dispatches<<17)
}

// ---------------------------------------------------------------------------
// Threads

func (m *machine) newThread(fnIdx int, args []int64, startClock int64) (*thread, error) {
	id := len(m.threads)
	if id >= m.maxThreads {
		return nil, fmt.Errorf("thread limit (%d) exceeded", m.maxThreads)
	}
	fn := m.prog.Funcs[fnIdx]
	t := &thread{
		id:     id,
		state:  tReady,
		clock:  startClock,
		spBase: m.stackBase + int64(id)*m.stackWords,
	}
	t.spTop = t.spBase + m.stackWords
	t.sp = t.spBase
	if fn.FrameWords > m.stackWords {
		return nil, fmt.Errorf("frame of %s exceeds stack", fn.Name)
	}
	fp := t.sp
	t.sp += fn.FrameWords
	for i, a := range args {
		m.mem[fp+int64(i)] = a
	}
	t.frames = append(t.frames, frame{fn: fn, fp: fp, wantValue: true})
	m.threads = append(m.threads, t)
	if m.cfg.Funcs != nil {
		m.cfg.Funcs.Enter(t.id, fn.Index, t.clock)
	}
	return t, nil
}

// ---------------------------------------------------------------------------
// Scheduler

func (m *machine) run() {
	mainIdx, ok := m.prog.FuncIdx["main"]
	if !ok {
		m.fail(nil, "no main function")
		return
	}
	if _, err := m.newThread(mainIdx, nil, 0); err != nil {
		m.fail(nil, "%v", err)
		return
	}

	// Livelock guard: scheduler iterations that execute no instructions
	// (timeout storms, wake/re-block cycles) are bounded.
	lastSteps := int64(-1)
	idleIters := 0
	for m.fatal == nil && !m.exited {
		if m.steps == lastSteps {
			idleIters++
			if idleIters > 1_000_000 {
				m.fail(nil, "scheduler livelock: no instruction progress (%s)", m.schedulerState())
				return
			}
		} else {
			lastSteps = m.steps
			idleIters = 0
		}
		// Deterministically parked threads re-check the arbiter when any
		// logical clock advanced; waking them more often starves progress
		// (the parked thread has the lowest simulated clock and would be
		// dispatched forever).
		if m.cfg.Deterministic && m.steps != m.detWakeSteps {
			m.detWakeSteps = m.steps
			m.wakeDetParked()
		}
		// Replay-scheduled forced preemptions of parked threads fire as
		// soon as their anchor and key order allow.
		if m.injectBlockedForced() {
			continue
		}
		t := m.pickReady()
		if t == nil {
			// With everyone parked or blocked, the minimal-logical-clock
			// arbiter-parked thread has its turn by construction.
			if m.wakeMinDetParked() {
				continue
			}
			if !m.cfg.DisableTimeouts && m.fireEarliestTimeout() {
				continue
			}
			if m.allDone() {
				return
			}
			m.reportDeadlock()
			return
		}
		// Weak-lock timeouts that come due before this dispatch fire first
		// so forced preemptions happen at their simulated time.
		if !m.cfg.DisableTimeouts && m.fireTimeoutsBefore(t.clock) {
			continue
		}
		m.runSlice(t)
	}
}

// schedulerState summarizes thread states for livelock diagnostics.
func (m *machine) schedulerState() string {
	s := ""
	for _, t := range m.threads {
		state := "ready"
		switch t.state {
		case tBlocked:
			state = "blocked"
		case tDone:
			state = "done"
		}
		fn := "?"
		if len(t.frames) > 0 {
			fr := t.frames[len(t.frames)-1]
			fn = fmt.Sprintf("%s@%d", fr.fn.Name, fr.pc)
		}
		s += fmt.Sprintf("[t%d %s clk=%d held=%d reacq=%d %s]",
			t.id, state, t.clock, len(t.held), len(t.reacquire), fn)
	}
	s += fmt.Sprintf(" timeouts=%d", m.wlStats.Timeouts)
	return s
}

func (m *machine) pickReady() *thread {
	var best *thread
	var bestJit uint64
	for _, t := range m.threads {
		if t.state != tReady {
			continue
		}
		if best == nil || t.clock < best.clock ||
			(t.clock == best.clock && m.jitter(t.id) < bestJit) {
			best = t
			bestJit = m.jitter(t.id)
		}
	}
	return best
}

func (m *machine) allDone() bool {
	for _, t := range m.threads {
		if t.state != tDone {
			return false
		}
	}
	return true
}

func (m *machine) reportDeadlock() {
	blocked := ""
	for _, t := range m.threads {
		if t.state == tBlocked {
			if blocked != "" {
				blocked += ", "
			}
			blocked += fmt.Sprintf("t%d", t.id)
		}
	}
	m.fail(nil, "deadlock: blocked threads [%s]", blocked)
}

func (m *machine) runSlice(t *thread) {
	m.dispatches++
	quantum := 16 + int(m.jitter(t.id)%96)
	for i := 0; i < quantum; i++ {
		if m.fatal != nil || m.exited {
			return
		}
		// A replay-scheduled forced preemption anchored at this exact
		// point fires before the next instruction.
		if stop, fired := m.checkForcedAt(t); stop {
			return
		} else if fired {
			continue
		}
		// A forced weak-lock preemption requires re-acquisition before the
		// thread may execute further (paper §2.3).
		if len(t.reacquire) > 0 {
			if !m.wlReacquire(t) {
				return // blocked
			}
		}
		if !m.step(t) {
			return // blocked, done, or faulted
		}
		m.steps++
		if m.steps > m.maxSteps {
			m.fail(t, "step limit exceeded (%d); runaway program?", m.maxSteps)
			return
		}
	}
}

// block parks t; the operation will be retried when woken.
func (m *machine) block(t *thread) {
	t.state = tBlocked
	if !t.blocking {
		t.blocking = true
		t.blockStart = t.clock
	}
}

// wake makes t ready at time at least `at`.
func (m *machine) wake(t *thread, at int64) {
	if t.state != tBlocked {
		return
	}
	if at > t.clock {
		t.clock = at
	}
	t.state = tReady
}

// unblocked finalizes a blocked episode and returns its duration.
func (m *machine) unblocked(t *thread) int64 {
	if !t.blocking {
		return 0
	}
	t.blocking = false
	d := t.clock - t.blockStart
	if d < 0 {
		d = 0
	}
	return d
}

// ---------------------------------------------------------------------------
// Instruction interpreter

// step executes one instruction of t. It returns false if the thread
// blocked (pc unchanged), finished, or the machine faulted.
func (m *machine) step(t *thread) bool {
	f := &t.frames[len(t.frames)-1]
	if f.pc >= len(f.fn.Code) {
		m.fail(t, "pc out of range in %s", f.fn.Name)
		return false
	}
	in := f.fn.Code[f.pc]
	cost := m.cost.Instr

	switch in.Op {
	case OpNop:

	case OpConst:
		t.push(in.Val)
	case OpAddrG:
		t.push(GlobalBase + in.Val)
	case OpAddrL:
		t.push(f.fp + in.Val)

	case OpLoad:
		addr := t.pop()
		if !m.validAddr(addr) {
			m.fail(t, "invalid load address %d (node %d in %s)", addr, in.Node, f.fn.Name)
			return false
		}
		t.push(m.mem[addr])
		m.counters.MemOps++
		if m.observing {
			m.emitAccess(t.id, addr, false, in.Node, t.clock)
		}

	case OpStore:
		v := t.pop()
		addr := t.pop()
		if !m.validAddr(addr) {
			m.fail(t, "invalid store address %d (node %d in %s)", addr, in.Node, f.fn.Name)
			return false
		}
		m.mem[addr] = v
		m.counters.MemOps++
		if m.observing {
			m.emitAccess(t.id, addr, true, in.Node, t.clock)
		}

	case OpDup:
		t.push(t.eval[len(t.eval)-1])
	case OpPop:
		t.pop()

	case OpNeg:
		t.push(-t.pop())
	case OpNot:
		if t.pop() == 0 {
			t.push(1)
		} else {
			t.push(0)
		}

	case OpAdd, OpSub, OpMul, OpDiv, OpMod, OpShl, OpShr, OpAnd, OpOr, OpXor,
		OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
		y := t.pop()
		x := t.pop()
		v, err := alu(in.Op, x, y)
		if err != nil {
			m.fail(t, "%v (node %d in %s)", err, in.Node, f.fn.Name)
			return false
		}
		t.push(v)

	case OpJmp:
		f.pc = int(in.Val)
		t.clock += cost
		t.instrCount++
		m.counters.Instrs++
		return true
	case OpJz:
		if t.pop() == 0 {
			f.pc = int(in.Val)
		} else {
			f.pc++
		}
		t.clock += cost
		t.instrCount++
		m.counters.Instrs++
		return true
	case OpJnz:
		if t.pop() != 0 {
			f.pc = int(in.Val)
		} else {
			f.pc++
		}
		t.clock += cost
		t.instrCount++
		m.counters.Instrs++
		return true

	case OpCall:
		return m.doCall(t, f, int(in.Val), in.N, false)
	case OpCallI:
		fv := t.eval[len(t.eval)-in.N-1]
		idx := FuncIndexOf(fv, len(m.prog.Funcs))
		if idx < 0 {
			m.fail(t, "indirect call through non-function value %d (node %d)", fv, in.Node)
			return false
		}
		return m.doCall(t, f, idx, in.N, true)

	case OpRet:
		v := t.pop()
		return m.doReturn(t, v)
	case OpRetVoid:
		return m.doReturn(t, 0)

	case OpBuiltin:
		return m.doBuiltin(t, f, types.BuiltinOp(in.Val), in.N, in)

	default:
		m.fail(t, "bad opcode %s", in.Op)
		return false
	}

	f.pc++
	t.clock += cost
	t.instrCount++
	m.counters.Instrs++
	return true
}

func (m *machine) validAddr(addr int64) bool {
	return addr >= GlobalBase && addr < m.memTop
}

func alu(op Op, x, y int64) (int64, error) {
	b2i := func(b bool) int64 {
		if b {
			return 1
		}
		return 0
	}
	switch op {
	case OpAdd:
		return x + y, nil
	case OpSub:
		return x - y, nil
	case OpMul:
		return x * y, nil
	case OpDiv:
		if y == 0 {
			return 0, fmt.Errorf("division by zero")
		}
		return x / y, nil
	case OpMod:
		if y == 0 {
			return 0, fmt.Errorf("division by zero")
		}
		return x % y, nil
	case OpShl:
		return x << uint64(y&63), nil
	case OpShr:
		return x >> uint64(y&63), nil
	case OpAnd:
		return x & y, nil
	case OpOr:
		return x | y, nil
	case OpXor:
		return x ^ y, nil
	case OpEq:
		return b2i(x == y), nil
	case OpNe:
		return b2i(x != y), nil
	case OpLt:
		return b2i(x < y), nil
	case OpLe:
		return b2i(x <= y), nil
	case OpGt:
		return b2i(x > y), nil
	case OpGe:
		return b2i(x >= y), nil
	}
	return 0, fmt.Errorf("bad alu op")
}

func (m *machine) doCall(t *thread, f *frame, fnIdx, nargs int, indirect bool) bool {
	callee := m.prog.Funcs[fnIdx]
	if nargs != callee.NParams {
		m.fail(t, "call to %s with %d args, want %d", callee.Name, nargs, callee.NParams)
		return false
	}
	if t.sp+callee.FrameWords > t.spTop {
		m.fail(t, "stack overflow calling %s", callee.Name)
		return false
	}
	args := t.peekN(nargs)
	fp := t.sp
	for i, a := range args {
		m.mem[fp+int64(i)] = a
	}
	t.popN(nargs)
	if indirect {
		t.pop() // the function value
	}
	t.sp += callee.FrameWords

	f.pc++ // return continues after the call
	wantValue := !callee.RetVoid || indirect
	t.frames = append(t.frames, frame{fn: callee, fp: fp, wantValue: wantValue})
	t.clock += m.cost.Instr + m.cost.Call
	t.instrCount++
	m.counters.Instrs++
	if m.cfg.Funcs != nil {
		m.cfg.Funcs.Enter(t.id, callee.Index, t.clock)
	}
	return true
}

func (m *machine) doReturn(t *thread, v int64) bool {
	fr := t.frames[len(t.frames)-1]
	if m.cfg.Funcs != nil {
		m.cfg.Funcs.Exit(t.id, fr.fn.Index, t.clock)
	}
	if m.cfg.CheckLockOrder {
		// Returning while holding weak-locks indicates a broken
		// instrumentation region structure.
		for _, h := range t.held {
			if m.cfg.WL != nil {
				d := m.cfg.WL.Lock(h.id)
				if d != nil && d.Kind != weaklock.KindFunc {
					m.fail(t, "return from %s while holding %s-lock %d", fr.fn.Name, d.Kind, h.id)
					return false
				}
			}
		}
	}
	t.sp = fr.fp
	t.frames = t.frames[:len(t.frames)-1]
	t.clock += m.cost.Instr
	t.instrCount++
	m.counters.Instrs++
	if len(t.frames) == 0 {
		// Thread exit.
		t.retVal = v
		t.state = tDone
		if t.id == 0 {
			m.exitCode = v
			m.exited = true
		}
		for _, w := range t.exitWaiters {
			m.boostWake(w, t)
			m.wake(w, t.clock)
			m.syncEvent(SyncKey{SyncSpawn, int64(t.id)}, EvJoin, w.id, t.clock)
		}
		t.exitWaiters = nil
		return false
	}
	if fr.wantValue {
		t.push(v)
	}
	return true
}

// ---------------------------------------------------------------------------
// Output helpers

func (m *machine) appendPrint(v int64) {
	m.output = append(m.output, strconv.FormatInt(v, 10)...)
	m.output = append(m.output, '\n')
}

func (m *machine) appendPrints(t *thread, addr int64) bool {
	for i := 0; ; i++ {
		if !m.validAddr(addr) {
			m.fail(t, "prints: invalid address %d", addr)
			return false
		}
		w := m.mem[addr]
		if w == 0 {
			return true
		}
		m.output = append(m.output, byte(w))
		addr++
		if i > 1<<20 {
			m.fail(t, "prints: unterminated string")
			return false
		}
	}
}
