package vm

import (
	"fmt"
	"hash/fnv"

	"repro/internal/minic/ast"
	"repro/internal/minic/types"
	"repro/internal/weaklock"
)

// CostModel assigns simulated cycle costs to VM operations. All evaluation
// numbers in the reproduction are ratios of simulated makespans, so only
// the relative magnitudes matter; the defaults are chosen to match the
// rough cost ratios on the paper's testbed (a logged event ~ tens of
// cycles, a syscall ~ hundreds).
type CostModel struct {
	Instr      int64 // one bytecode instruction
	Call       int64 // extra cost of a call/return pair
	SyncOp     int64 // an original-program sync operation (lock, barrier...)
	LogEvent   int64 // writing one record to a log (sync order or input)
	LogWord    int64 // additional cost per logged data word
	WeakLockOp int64 // a weak-lock acquire or release, excluding logging
	RangeCheck int64 // extra cost of a loop-lock range check
	Malloc     int64 // a heap allocation
	Syscall    int64 // base cost of a simulated system call
	ReplayGate int64 // consulting the order log during replay
}

// DefaultCost returns the standard cost model.
func DefaultCost() CostModel {
	return CostModel{
		Instr:      1,
		Call:       2,
		SyncOp:     12,
		LogEvent:   24,
		LogWord:    1,
		WeakLockOp: 14,
		RangeCheck: 6,
		Malloc:     24,
		Syscall:    120,
		ReplayGate: 10,
	}
}

// SyncClass distinguishes the object classes carrying happens-before order.
type SyncClass uint8

// The sync object classes.
const (
	SyncMutex SyncClass = iota
	SyncBarrier
	SyncCond
	SyncWeakLock
	SyncSpawn // the global spawn sequencer (makes thread IDs deterministic)
)

// String names the sync class for logs.
func (c SyncClass) String() string {
	switch c {
	case SyncMutex:
		return "mutex"
	case SyncBarrier:
		return "barrier"
	case SyncCond:
		return "cond"
	case SyncWeakLock:
		return "weaklock"
	case SyncSpawn:
		return "spawn"
	}
	return "?"
}

// SyncKey identifies one synchronization object.
type SyncKey struct {
	Class SyncClass
	ID    int64 // address for program sync objects; lock ID for weak-locks
}

// String renders the key.
func (k SyncKey) String() string { return fmt.Sprintf("%s:%d", k.Class, k.ID) }

// SyncEventKind distinguishes the logged operations on a sync object.
type SyncEventKind uint8

// The sync event kinds.
const (
	EvAcquire SyncEventKind = iota
	EvRelease
	EvBarrierArrive
	EvCondWait
	EvCondSignal
	EvCondBcast
	EvSpawn
	EvWLAcquire
	EvWLRelease
	EvWLForcedRelease

	// Additional kinds delivered only through SyncEventHook (not logged):
	EvBarrierRelease // a thread leaves a barrier generation
	EvCondWake       // a cond_wait sleeper was woken by a signal
	EvJoin           // join(child) completed; key.ID is the child tid
)

// String names the event kind.
func (k SyncEventKind) String() string {
	switch k {
	case EvAcquire:
		return "acq"
	case EvRelease:
		return "rel"
	case EvBarrierArrive:
		return "bar"
	case EvCondWait:
		return "wait"
	case EvCondSignal:
		return "sig"
	case EvCondBcast:
		return "bcast"
	case EvSpawn:
		return "spawn"
	case EvWLAcquire:
		return "wlacq"
	case EvWLRelease:
		return "wlrel"
	case EvWLForcedRelease:
		return "wlforce"
	case EvBarrierRelease:
		return "barrel"
	case EvCondWake:
		return "wake"
	case EvJoin:
		return "join"
	}
	return "?"
}

// SyncMonitor observes (recording) or gates (replay) the order of
// synchronization operations. The recorder's implementation always allows
// TryProceed and appends to the order log in Commit; the replayer's
// implementation allows a thread to proceed only when it is that thread's
// turn per the log.
type SyncMonitor interface {
	// TryProceed reports whether thread tid may perform its next operation
	// on key now. A false return parks the thread until another commit on
	// the same key wakes it for a retry.
	TryProceed(key SyncKey, kind SyncEventKind, tid int) bool

	// Commit records that the operation happened, in its final global
	// order per key, and returns the simulated cycle cost of the
	// bookkeeping (log write when recording, gate consultation when
	// replaying).
	Commit(key SyncKey, kind SyncEventKind, tid int, now int64) int64
}

// ForcedAnchor pins a forced weak-lock preemption to a deterministic point
// in the owning thread's execution: its retired-instruction count, its
// committed-sync-operation count, and whether it was parked inside a
// blocking operation at the time. The pair (Instr, Sync) is the moral
// equivalent of DoublePlay's (instruction pointer, branch count) that the
// paper planned to use (§2.3); Blocked disambiguates "about to execute the
// operation" from "parked inside it", which share counters.
type ForcedAnchor struct {
	Instr   int64
	Sync    int64
	Blocked bool
}

// PreemptionMonitor extends SyncMonitor for forced weak-lock preemptions
// (paper §2.3). Recording implementations log the anchor; replaying
// implementations expose the schedule so the VM can inject each preemption
// at exactly the recorded point.
type PreemptionMonitor interface {
	// CommitForced records (or, on replay, consumes) a forced release of
	// key by tid at the given anchor, returning the bookkeeping cost.
	CommitForced(key SyncKey, tid int, anchor ForcedAnchor, now int64) int64

	// NextForced returns the next forced preemption scheduled for tid, if
	// any (replay side; recorders return ok=false).
	NextForced(tid int) (key SyncKey, anchor ForcedAnchor, ok bool)
}

// InputProvider supplies the results of nondeterministic input operations.
// Live runs read the simulated OS (and, when recording, log the results);
// replay runs feed results back from the log.
type InputProvider interface {
	// Input performs the input/output operation op for thread tid.
	//   val   - the operation's return value
	//   data  - words read (for read/recv), stored to the user buffer
	//   ready - absolute simulated time when the result is available
	//   cost  - extra cycles charged (logging overhead when recording)
	// A non-nil error aborts the run (replay divergence).
	Input(tid int, op types.BuiltinOp, args []int64, sendData []int64, now int64) (val int64, data []int64, ready int64, cost int64, err error)
}

// TraceHook observes every shared-memory access; used by the dynamic
// happens-before race checker and by access-count validation.
type TraceHook interface {
	Access(tid int, addr int64, write bool, node ast.NodeID, clock int64)
}

// FuncHook observes function entries and exits; used by the non-concurrency
// profiler (paper §4).
type FuncHook interface {
	Enter(tid int, fn int, clock int64)
	Exit(tid int, fn int, clock int64)
}

// SyncEventHook observes every synchronization operation as it happens
// (acquires AND releases, barrier releases, cond wakeups, spawn/join),
// regardless of whether a monitor logs it. The dynamic happens-before race
// checker builds its vector clocks from this stream.
type SyncEventHook interface {
	SyncEvent(key SyncKey, kind SyncEventKind, tid int, clock int64)
}

// Config parameterizes one VM run.
type Config struct {
	// Inputs provides nondeterministic input. Required.
	Inputs InputProvider

	// Monitor observes or gates sync order. Nil disables both (native run).
	Monitor SyncMonitor

	// Trace observes memory accesses. Nil disables (it is expensive).
	// Delivery is batched: the hook is invoked from sink drains, in
	// program order, not synchronously per instruction.
	Trace TraceHook

	// Funcs observes function entry/exit. Nil disables.
	Funcs FuncHook

	// SyncEvents observes every sync operation. Nil disables. Like Trace,
	// delivery is batched through the event-sink runtime.
	SyncEvents SyncEventHook

	// Sinks receive the batched observation event stream (memory accesses
	// and sync operations, in program order). This is the preferred
	// observer interface: the interpreter hot loop appends to a flat
	// buffer and sinks pay one dispatch per EventBatchSize events. Trace
	// and SyncEvents are adapted onto the same stream internally.
	Sinks []EventSink

	// WL is the weak-lock table; required if the program executes wl_*
	// builtins.
	WL *weaklock.Table

	// Cost is the cycle cost model; zero value means DefaultCost.
	Cost CostModel

	// Seed perturbs scheduling decisions, modeling the timing
	// nondeterminism of a real multiprocessor. Two runs of a racy program
	// with different seeds may produce different results; Chimera's claim
	// is that record+replay reproduces one recorded run exactly.
	Seed uint64

	// MaxSteps bounds total executed instructions (runaway guard).
	// Zero means a generous default.
	MaxSteps int64

	// StackWords and HeapWords size the memory regions; zero means
	// defaults.
	StackWords int64
	HeapWords  int64

	// MaxThreads bounds concurrently live threads; zero means 64.
	MaxThreads int

	// WLTimeout is the weak-lock stall threshold in cycles before the
	// holder is forcibly preempted (paper §2.3). Zero means a default
	// large enough that well-formed programs never time out.
	WLTimeout int64

	// DisableTimeouts turns off organic weak-lock timeouts; replay sets
	// this so preemptions come only from the recorded schedule.
	DisableTimeouts bool

	// Deterministic enables deterministic execution (the paper's §9
	// future-work direction, in the style of Kendo): every gated
	// synchronization operation — including the weak-locks that make the
	// program race-free — is arbitrated by deterministic logical clocks
	// (retired instructions + wakeup boosts, never simulated time), so the
	// program's result is independent of the schedule seed and of the
	// cost model. Input operations are serialized on a device key and
	// now() returns logical time. No recording is needed for
	// reproducibility; nondeterministic input must still be captured to
	// reproduce a run on a different World.
	Deterministic bool

	// CheckLockOrder enables dynamic verification of the weak-lock
	// acquisition discipline (debug aid for the instrumenter).
	CheckLockOrder bool
}

// Counters aggregates dynamic operation counts for the evaluation.
type Counters struct {
	Instrs     int64 // executed bytecode instructions
	MemOps     int64 // dynamic loads+stores (Figure 6 denominator)
	SyncOps    int64 // original-program sync operations (Table 2 "synch. ops")
	InputOps   int64 // input syscalls (Table 2 "system calls")
	SyncLogs   int64 // order-log records for original sync ops
	InputLogs  int64 // input-log records
	SyncLogCyc int64 // cycles spent logging original sync ops
	InputCyc   int64 // cycles spent logging input
	SyncWait   int64 // cycles blocked on original sync objects
	IOWait     int64 // cycles blocked waiting for simulated I/O
	GateWait   int64 // cycles blocked on the replay order gate
	Spawns     int64

	// EventsEmitted and EventBatches account for the event-sink runtime:
	// observation events delivered to sinks and the batch drains that
	// carried them. Both are zero on un-observed runs, and both are
	// counted in flushEvents so the emission hot path stays untouched.
	EventsEmitted int64
	EventBatches  int64
}

// RunError is a fatal execution error (fault, deadlock, check failure,
// replay divergence).
type RunError struct {
	Thread int
	Clock  int64
	Msg    string
}

// Error implements the error interface.
func (e *RunError) Error() string {
	return fmt.Sprintf("thread %d @%d: %s", e.Thread, e.Clock, e.Msg)
}

// Result is the outcome of one VM run.
type Result struct {
	// Output is the deterministic program output (print/prints).
	Output []byte

	// ExitCode is main's return value or the exit() argument.
	ExitCode int64

	// Makespan is the simulated wall time: the maximum final thread clock.
	Makespan int64

	// Counters and WLStats are the dynamic accounting.
	Counters Counters
	WLStats  weaklock.Stats

	// WLSites holds per-weak-lock counters, indexed by lock ID (same
	// order as the table); nil when the run had no weak-lock table.
	WLSites []weaklock.SiteStats

	// MemHash fingerprints final memory (globals+heap) and output;
	// record/replay verification compares it.
	MemHash uint64

	// Threads is the number of threads ever created.
	Threads int

	// Err is non-nil if the run aborted.
	Err error
}

// Hash64 combines the output and memory fingerprints; two runs with equal
// Hash64 produced identical observable behavior.
func (r *Result) Hash64() uint64 {
	h := fnv.New64a()
	h.Write(r.Output)
	var b [8]byte
	putU64(b[:], r.MemHash)
	h.Write(b[:])
	putU64(b[:], uint64(r.ExitCode))
	h.Write(b[:])
	return h.Sum64()
}

func putU64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}
