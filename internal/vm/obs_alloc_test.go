package vm

import (
	"fmt"
	"testing"

	"repro/internal/minic/parser"
	"repro/internal/minic/types"
	"repro/internal/oskit"
)

// hotLoopProgram compiles a single-threaded program whose main loop emits
// a memory event per iteration — the VM's event hot path.
func hotLoopProgram(tb testing.TB, iters int) *Program {
	tb.Helper()
	src := fmt.Sprintf(`
int g;
int main(void) {
    for (int i = 0; i < %d; i++) {
        int tmp = g;
        g = tmp + 1;
    }
    print(g);
    return 0;
}`, iters)
	f := parser.MustParse("hot.mc", src)
	info := types.MustCheck(f)
	p, err := Compile(info)
	if err != nil {
		tb.Fatal(err)
	}
	return p
}

// With no sinks registered the event path must be fully disabled: no
// event buffer, no per-event work that allocates. We check that by
// comparing whole-run allocation counts at N and 2N loop iterations —
// the fixed setup cost (machine, stacks, world) is identical, so any
// per-iteration allocation shows up as a difference.
func TestDisabledObservabilityAddsNoAllocs(t *testing.T) {
	short := hotLoopProgram(t, 2_000)
	long := hotLoopProgram(t, 4_000)
	runOnce := func(p *Program) {
		r := Run(p, Config{Inputs: LiveInputs{OS: oskit.NewWorld(1)}, Seed: 1})
		if r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	// Warm up both programs so lazy globals don't skew the first sample.
	runOnce(short)
	runOnce(long)
	a := testing.AllocsPerRun(5, func() { runOnce(short) })
	b := testing.AllocsPerRun(5, func() { runOnce(long) })
	if a != b {
		t.Errorf("doubling the hot loop changed allocations: %v → %v (disabled observability must be alloc-free per event)", a, b)
	}
}

// BenchmarkEventHotLoopDisabled reports the allocation profile of the
// event hot loop with observability off; allocs/op must stay flat as the
// loop grows (see TestDisabledObservabilityAddsNoAllocs for the hard
// assertion).
func BenchmarkEventHotLoopDisabled(b *testing.B) {
	p := hotLoopProgram(b, 10_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := Run(p, Config{Inputs: LiveInputs{OS: oskit.NewWorld(1)}, Seed: 1})
		if r.Err != nil {
			b.Fatal(r.Err)
		}
	}
}

// BenchmarkEventHotLoopCounting is the observing counterpart: one
// counting sink attached, so the batched event path is live.
func BenchmarkEventHotLoopCounting(b *testing.B) {
	p := hotLoopProgram(b, 10_000)
	var sink countingSink
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := Run(p, Config{
			Inputs: LiveInputs{OS: oskit.NewWorld(1)},
			Seed:   1,
			Sinks:  []EventSink{&sink},
		})
		if r.Err != nil {
			b.Fatal(r.Err)
		}
	}
}

type countingSink struct{ n int64 }

func (s *countingSink) Drain(events []Event) { s.n += int64(len(events)) }
