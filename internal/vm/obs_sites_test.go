package vm

import (
	"testing"

	"repro/internal/minic/parser"
	"repro/internal/minic/types"
	"repro/internal/oskit"
	"repro/internal/weaklock"
)

// contendSrc hammers one weak-lock site from two spawned threads: every
// acquisition races the other thread's hold, so the per-site contention
// counters must light up.
const contendSrc = `
int g;
void worker(int n) {
    for (int i = 0; i < n; i++) {
        wl_acquire(3, 0, ` + inf + `);
        int tmp = g;
        g = tmp + 1;
        wl_release(3, 0);
    }
}
int main(void) {
    int t1 = spawn(worker, 400);
    int t2 = spawn(worker, 400);
    join(t1); join(t2);
    print(g);
    return 0;
}`

// Per-site counters must agree with the aggregate weak-lock stats, and a
// two-thread fight over one site must register as contention with
// nonzero stall time. Runs under -race in CI: the counters live on the
// single-goroutine machine, so the race detector stays quiet.
func TestPerSiteCountersUnderContention(t *testing.T) {
	for seed := uint64(0); seed < 3; seed++ {
		r := runWL(t, contendSrc, wlTable(1), seed, 0)
		if r.Err != nil {
			t.Fatalf("seed %d: %v", seed, r.Err)
		}
		if string(r.Output) != "800\n" {
			t.Fatalf("seed %d: output %q", seed, r.Output)
		}
		if len(r.WLSites) != 1 {
			t.Fatalf("seed %d: %d site rows, want 1", seed, len(r.WLSites))
		}
		st := r.WLSites[0]
		if st.Acquires != 800 || st.Releases != 800 {
			t.Errorf("seed %d: site acquires/releases = %d/%d, want 800/800", seed, st.Acquires, st.Releases)
		}
		if st.Acquires != r.WLStats.Acquires[weaklock.KindInstr] {
			t.Errorf("seed %d: site acquires %d != aggregate %d",
				seed, st.Acquires, r.WLStats.Acquires[weaklock.KindInstr])
		}
		if st.Contended == 0 {
			t.Errorf("seed %d: two threads on one site never contended", seed)
		}
		if st.StallCycles == 0 {
			t.Errorf("seed %d: contention with zero stall cycles", seed)
		}
		if st.Contended > st.Acquires {
			t.Errorf("seed %d: contended %d exceeds acquires %d", seed, st.Contended, st.Acquires)
		}
		if st.StallCycles != r.WLStats.Contention[weaklock.KindInstr] {
			t.Errorf("seed %d: site stall %d != aggregate contention %d",
				seed, st.StallCycles, r.WLStats.Contention[weaklock.KindInstr])
		}
	}
}

// A forced preemption (weak-lock timeout) must be charged to the site it
// released. Reuses the §2.3 fixture: the holder parks on a condvar inside
// the region, the waiter times out and forces the release.
func TestPerSiteForcedCount(t *testing.T) {
	src := `
int m;
int cv;
int flag;
int g;
void holder(int n) {
    wl_acquire(3, 0, ` + inf + `);
    g = 1;
    lock(&m);
    while (flag == 0) {
        cond_wait(&cv, &m);
    }
    unlock(&m);
    g = 2;
    wl_release(3, 0);
}
void waiter(int n) {
    wl_acquire(3, 0, ` + inf + `);
    g = g + 10;
    wl_release(3, 0);
    lock(&m);
    flag = 1;
    cond_signal(&cv);
    unlock(&m);
}
int main(void) {
    int t1 = spawn(holder, 0);
    for (int i = 0; i < 3000; i++) { }
    int t2 = spawn(waiter, 0);
    join(t1); join(t2);
    print(g);
    return 0;
}`
	r := runWL(t, src, wlTable(1), 3, 50_000)
	if r.Err != nil {
		t.Fatalf("run: %v", r.Err)
	}
	if r.WLStats.Timeouts == 0 {
		t.Fatalf("fixture did not time out; forced-release accounting untested")
	}
	if len(r.WLSites) != 1 {
		t.Fatalf("%d site rows, want 1", len(r.WLSites))
	}
	if got := r.WLSites[0].Forced; got == 0 {
		t.Errorf("site Forced = %d after a forced preemption, want > 0", got)
	}
	// The accounting invariant behind the metrics report: committed
	// per-site operations are exactly what the order log records.
	st := r.WLSites[0]
	if st.Acquires == 0 || st.Acquires != st.Releases+st.Forced {
		t.Errorf("site ops unbalanced: acquires %d, releases %d, forced %d",
			st.Acquires, st.Releases, st.Forced)
	}
}

// WLSites must stay nil on runs without a weak-lock table: no table, no
// per-site rows, no allocation.
func TestNoSiteRowsWithoutTable(t *testing.T) {
	src := `
int main(void) {
    print(41 + 1);
    return 0;
}`
	f := parser.MustParse("t.mc", src)
	info := types.MustCheck(f)
	p, err := Compile(info)
	if err != nil {
		t.Fatal(err)
	}
	r := Run(p, Config{Inputs: LiveInputs{OS: oskit.NewWorld(1)}, Seed: 1})
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	if r.WLSites != nil {
		t.Errorf("WLSites = %v on an un-tabled run, want nil", r.WLSites)
	}
}
