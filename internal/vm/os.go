package vm

import (
	"fmt"

	"repro/internal/minic/types"
)

// OS is the simulated operating system interface: the source of all
// nondeterministic input (paper §2.2: "interrupts and data read from input
// devices"). Implementations live in internal/oskit.
//
// Each call receives the calling thread's current simulated time and
// returns the result plus the absolute simulated time at which the result
// becomes available (for modeling I/O latency; ready <= now means
// immediately).
type OS interface {
	Open(path int64, now int64) (fd int64, ready int64)
	Close(fd int64)
	Read(fd, n, now int64) (data []int64, ready int64)
	Write(fd int64, data []int64, now int64) (n int64, ready int64)
	Accept(lsock int64, now int64) (conn int64, ready int64)
	Recv(conn, n, now int64) (data []int64, ready int64)
	Send(conn int64, data []int64, now int64) (n int64, ready int64)
	Now(now int64) int64
	Rnd(n int64) int64
}

// LiveInputs adapts an OS into an InputProvider for uninstrumented (native)
// runs: results come straight from the simulated devices with no logging
// cost. The recorder in internal/replay wraps the same OS and adds the
// input log.
type LiveInputs struct {
	OS OS
}

// Input implements InputProvider.
func (l LiveInputs) Input(tid int, op types.BuiltinOp, args []int64, sendData []int64, now int64) (val int64, data []int64, ready int64, cost int64, err error) {
	switch op {
	case types.BOpen:
		fd, rdy := l.OS.Open(args[0], now)
		return fd, nil, rdy, 0, nil
	case types.BRead:
		d, rdy := l.OS.Read(args[0], args[2], now)
		return int64(len(d)), d, rdy, 0, nil
	case types.BWrite:
		n, rdy := l.OS.Write(args[0], sendData, now)
		return n, nil, rdy, 0, nil
	case types.BAccept:
		conn, rdy := l.OS.Accept(args[0], now)
		return conn, nil, rdy, 0, nil
	case types.BRecv:
		d, rdy := l.OS.Recv(args[0], args[2], now)
		return int64(len(d)), d, rdy, 0, nil
	case types.BSend:
		n, rdy := l.OS.Send(args[0], sendData, now)
		return n, nil, rdy, 0, nil
	case types.BNow:
		return l.OS.Now(now), nil, now, 0, nil
	case types.BRnd:
		return l.OS.Rnd(args[0]), nil, now, 0, nil
	}
	return 0, nil, now, 0, fmt.Errorf("LiveInputs: unexpected op %s", types.BuiltinName(op))
}
