// Package vm implements the execution substrate of the Chimera
// reproduction: a bytecode compiler for MiniC and a simulated-multicore
// interpreter with a deterministic cycle cost model.
//
// The VM stands in for the paper's hardware/OS testbed (8-core Xeon, patched
// Linux 2.6.26 + pthreads). Each thread has its own simulated clock; threads
// advance in parallel and synchronize at locks, barriers, condition
// variables, weak-locks and I/O. All measured quantities in the evaluation
// (recording overhead, contention breakdown, log volumes, proportion of
// instrumented operations) are computed from this simulated timeline, so
// relative overheads are deterministic and reproducible.
package vm

import (
	"fmt"

	"repro/internal/minic/ast"
	"repro/internal/minic/types"
)

// Op is a bytecode opcode for the stack-machine VM.
type Op int

// The opcodes.
const (
	OpNop Op = iota

	OpConst // push Val
	OpAddrG // push globalBase+Val (address of global)
	OpAddrL // push fp+Val (address of local/param slot)
	OpLoad  // pop addr, push mem[addr]
	OpStore // pop value, pop addr, mem[addr] = value
	OpDup   // duplicate top of stack
	OpPop   // discard top of stack

	// Binary arithmetic: pop y, pop x, push x OP y.
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpMod
	OpShl
	OpShr
	OpAnd
	OpOr
	OpXor
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe

	// Unary: pop x, push OP x.
	OpNeg
	OpNot

	OpJmp // jump to Val
	OpJz  // pop; jump to Val if zero
	OpJnz // pop; jump to Val if nonzero

	OpCall    // call function index Val with N args on stack
	OpCallI   // pop N args then a function value; indirect call
	OpRet     // pop return value, return to caller
	OpRetVoid // return 0 to caller

	OpBuiltin // execute builtin op Val with N args on stack
)

var opNames = [...]string{
	OpNop: "nop", OpConst: "const", OpAddrG: "addrg", OpAddrL: "addrl",
	OpLoad: "load", OpStore: "store", OpDup: "dup", OpPop: "pop",
	OpAdd: "add", OpSub: "sub", OpMul: "mul", OpDiv: "div", OpMod: "mod",
	OpShl: "shl", OpShr: "shr", OpAnd: "and", OpOr: "or", OpXor: "xor",
	OpEq: "eq", OpNe: "ne", OpLt: "lt", OpLe: "le", OpGt: "gt", OpGe: "ge",
	OpNeg: "neg", OpNot: "not",
	OpJmp: "jmp", OpJz: "jz", OpJnz: "jnz",
	OpCall: "call", OpCallI: "calli", OpRet: "ret", OpRetVoid: "retvoid",
	OpBuiltin: "builtin",
}

// String returns the mnemonic.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// Instr is one bytecode instruction. Node attributes the instruction to the
// source AST node (loads/stores carry the lvalue expression node, which is
// how dynamic access counts and the race checker map back to RELAY's
// report).
type Instr struct {
	Op   Op
	Val  int64
	N    int // argument count for call/builtin
	Node ast.NodeID
}

// String renders the instruction for disassembly.
func (i Instr) String() string {
	switch i.Op {
	case OpConst, OpAddrG, OpAddrL, OpJmp, OpJz, OpJnz:
		return fmt.Sprintf("%s %d", i.Op, i.Val)
	case OpCall:
		return fmt.Sprintf("call f%d/%d", i.Val, i.N)
	case OpCallI:
		return fmt.Sprintf("calli/%d", i.N)
	case OpBuiltin:
		return fmt.Sprintf("builtin %s/%d", types.BuiltinName(types.BuiltinOp(i.Val)), i.N)
	}
	return i.Op.String()
}

// FuncCode is a compiled function.
type FuncCode struct {
	Name       string
	Index      int
	NParams    int
	FrameWords int64 // params + locals, in words
	RetVoid    bool
	Code       []Instr

	// LocalOffset maps semantic objects (params and locals) to their
	// frame-relative word offsets.
	LocalOffset map[*types.Object]int64
}

// Address-space layout constants. The VM uses a flat word-addressed memory;
// function values live in a disjoint "text" range so that data and code
// addresses never collide.
const (
	// GlobalBase is the address of the first global word. Address 0 and a
	// few low words are permanently invalid so that null-pointer
	// dereferences fault.
	GlobalBase = 16

	// FuncValueBase is the encoding base for function values: function i
	// is the value FuncValueBase + i.
	FuncValueBase = int64(1) << 40

	// DefaultStackWords is the per-thread stack size.
	DefaultStackWords = 1 << 16

	// DefaultHeapWords is the heap size.
	DefaultHeapWords = 1 << 22
)

// Program is a compiled MiniC program ready to run.
type Program struct {
	Info  *types.Info
	Funcs []*FuncCode

	FuncIdx map[string]int

	// GlobalWords is the initial global segment image (globals, then
	// string literal data), based at GlobalBase.
	GlobalWords []int64

	// GlobalAddr maps each global object to its absolute address.
	GlobalAddr map[*types.Object]int64

	// StringAddr maps each distinct string literal to the address of its
	// NUL-terminated word array.
	StringAddr map[string]int64

	// HeapBase is the first heap address (right after globals/strings).
	HeapBase int64
}

// FuncValue returns the VM value representing function index i.
func FuncValue(i int) int64 { return FuncValueBase + int64(i) }

// FuncIndexOf returns the function index encoded in a function value, or -1
// if v is not a function value.
func FuncIndexOf(v int64, nfuncs int) int {
	if v >= FuncValueBase && v < FuncValueBase+int64(nfuncs) {
		return int(v - FuncValueBase)
	}
	return -1
}

// Disasm renders the bytecode of all functions, for debugging and tests.
func (p *Program) Disasm() string {
	s := ""
	for _, f := range p.Funcs {
		s += fmt.Sprintf("func %s (f%d, %d params, %d frame words):\n",
			f.Name, f.Index, f.NParams, f.FrameWords)
		for i, in := range f.Code {
			s += fmt.Sprintf("  %4d  %s\n", i, in)
		}
	}
	return s
}
