package vm

import (
	"strings"
	"testing"

	"repro/internal/minic/parser"
	"repro/internal/minic/types"
)

func TestFuncValueEncoding(t *testing.T) {
	for _, i := range []int{0, 1, 17} {
		v := FuncValue(i)
		if got := FuncIndexOf(v, 32); got != i {
			t.Errorf("round trip %d -> %d", i, got)
		}
	}
	if FuncIndexOf(123, 32) != -1 {
		t.Error("data value decoded as function")
	}
	if FuncIndexOf(FuncValue(40), 32) != -1 {
		t.Error("out-of-range function index accepted")
	}
}

func TestDisasm(t *testing.T) {
	p := compileSrc(t, `
int g;
int add(int a, int b) { return a + b; }
int main(void) {
    g = add(2, 3);
    if (g > 4) { print(g); }
    for (int i = 0; i < 3; i++) { g += i; }
    return g;
}`)
	d := p.Disasm()
	for _, want := range []string{"func add", "func main", "call f", "builtin print/1", "jz", "add", "ret"} {
		if !strings.Contains(d, want) {
			t.Errorf("disassembly missing %q:\n%s", want, d)
		}
	}
}

func TestGlobalLayout(t *testing.T) {
	p := compileSrc(t, `
int a;
int arr[10];
struct s { int x; int y; };
struct s gs;
int b;
int main(void) { return 0; }`)
	info := p.Info
	var objs []*types.Object
	objs = append(objs, info.Globals...)
	// Addresses are consecutive in declaration order starting at GlobalBase.
	want := int64(GlobalBase)
	for _, o := range objs {
		if got := p.GlobalAddr[o]; got != want {
			t.Errorf("%s at %d, want %d", o.Name, got, want)
		}
		want += o.Type.Size()
	}
	if p.HeapBase < want {
		t.Errorf("heap base %d overlaps globals end %d", p.HeapBase, want)
	}
}

func TestStringPooling(t *testing.T) {
	p := compileSrc(t, `
int main(void) {
    prints("dup");
    prints("dup");
    prints("other");
    return 0;
}`)
	if len(p.StringAddr) != 2 {
		t.Errorf("string pool has %d entries, want 2 (dedup)", len(p.StringAddr))
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []struct{ src, want string }{
		{`int g = h; int h; int main(void){return 0;}`, "constant"},
		{`int g = 1/0; int main(void){return 0;}`, "division by zero"},
		{`int g;`, "no main"},
	}
	for _, tc := range cases {
		f, err := parser.Parse("t.mc", tc.src)
		if err != nil {
			t.Fatalf("parse: %v", err)
		}
		info, err := types.Check(f)
		if err != nil {
			t.Fatalf("check: %v", err)
		}
		_, err = Compile(info)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%q: error %v, want containing %q", tc.src, err, tc.want)
		}
	}
}

func TestConstGlobalInitForms(t *testing.T) {
	r := runSrc(t, `
int a = 1 + 2 * 3;
int c = sizeof(struct s) * 2;
int *d = &a;
int e = f0;
struct s { int x; int y; int z; };
int f0(void) { return 5; }
int main(void) {
    print(a);
    print(c);
    print(*d);
    int fp = e;
    print(fp());
    return 0;
}`, 1)
	if string(r.Output) != "7\n6\n7\n5\n" {
		t.Errorf("output %q", r.Output)
	}
}

func TestConstGlobalInitFunctionAddress(t *testing.T) {
	// &f and bare f both yield the function value in constant context.
	r := runSrc(t, `
int five(void) { return 5; }
int g1 = five;
int g2 = &five;
int main(void) {
    int a = g1;
    int b = g2;
    print(a());
    print(b());
    return 0;
}`, 1)
	if string(r.Output) != "5\n5\n" {
		t.Errorf("output %q", r.Output)
	}
}

func TestResultHash64Changes(t *testing.T) {
	r1 := runSrc(t, `int main(void) { print(1); return 0; }`, 1)
	r2 := runSrc(t, `int main(void) { print(2); return 0; }`, 1)
	if r1.Hash64() == r2.Hash64() {
		t.Error("different outputs must hash differently")
	}
}
