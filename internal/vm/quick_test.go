package vm

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/minic/parser"
	"repro/internal/minic/types"
	"repro/internal/oskit"
)

// genExpr builds a random arithmetic expression over variables a..d and a
// parallel Go evaluator, avoiding division/modulo by zero via guarded
// denominators.
type refEnv struct{ a, b, c, d int64 }

func genExpr(r *rand.Rand, depth int) (string, func(refEnv) int64) {
	if depth == 0 || r.Intn(4) == 0 {
		switch r.Intn(5) {
		case 0:
			v := int64(r.Intn(201) - 100)
			return fmt.Sprintf("%d", v), func(refEnv) int64 { return v }
		case 1:
			return "a", func(e refEnv) int64 { return e.a }
		case 2:
			return "b", func(e refEnv) int64 { return e.b }
		case 3:
			return "c", func(e refEnv) int64 { return e.c }
		default:
			return "d", func(e refEnv) int64 { return e.d }
		}
	}
	xs, xf := genExpr(r, depth-1)
	ys, yf := genExpr(r, depth-1)
	b2i := func(b bool) int64 {
		if b {
			return 1
		}
		return 0
	}
	switch r.Intn(12) {
	case 0:
		return "(" + xs + " + " + ys + ")", func(e refEnv) int64 { return xf(e) + yf(e) }
	case 1:
		return "(" + xs + " - " + ys + ")", func(e refEnv) int64 { return xf(e) - yf(e) }
	case 2:
		return "(" + xs + " * " + ys + ")", func(e refEnv) int64 { return xf(e) * yf(e) }
	case 3:
		// Guarded division: denominator forced nonzero.
		return "(" + xs + " / (" + ys + " * 2 + 1))",
			func(e refEnv) int64 { return xf(e) / (yf(e)*2 + 1) }
	case 4:
		return "(" + xs + " & " + ys + ")", func(e refEnv) int64 { return xf(e) & yf(e) }
	case 5:
		return "(" + xs + " | " + ys + ")", func(e refEnv) int64 { return xf(e) | yf(e) }
	case 6:
		return "(" + xs + " ^ " + ys + ")", func(e refEnv) int64 { return xf(e) ^ yf(e) }
	case 7:
		return "(" + xs + " < " + ys + ")", func(e refEnv) int64 { return b2i(xf(e) < yf(e)) }
	case 8:
		return "(" + xs + " == " + ys + ")", func(e refEnv) int64 { return b2i(xf(e) == yf(e)) }
	case 9:
		return "(-" + xs + ")", func(e refEnv) int64 { return -xf(e) }
	case 10:
		return "(" + xs + " >= " + ys + " ? " + xs + " : " + ys + ")",
			func(e refEnv) int64 {
				if xf(e) >= yf(e) {
					return xf(e)
				}
				return yf(e)
			}
	default:
		return "(!" + xs + ")", func(e refEnv) int64 { return b2i(xf(e) == 0) }
	}
}

// TestPropertyExpressionEval generates random expressions and checks the
// compiled VM result against direct Go evaluation.
func TestPropertyExpressionEval(t *testing.T) {
	r := rand.New(rand.NewSource(12345))
	for trial := 0; trial < 120; trial++ {
		exprSrc, ref := genExpr(r, 4)
		env := refEnv{
			a: int64(r.Intn(41) - 20), b: int64(r.Intn(41) - 20),
			c: int64(r.Intn(41) - 20), d: int64(r.Intn(41) - 20),
		}
		src := fmt.Sprintf(`
int main(void) {
    int a = %d;
    int b = %d;
    int c = %d;
    int d = %d;
    print(%s);
    return 0;
}`, env.a, env.b, env.c, env.d, exprSrc)
		f, err := parser.Parse("q.mc", src)
		if err != nil {
			t.Fatalf("trial %d parse: %v\n%s", trial, err, src)
		}
		info, err := types.Check(f)
		if err != nil {
			t.Fatalf("trial %d check: %v\n%s", trial, err, src)
		}
		p, err := Compile(info)
		if err != nil {
			t.Fatalf("trial %d compile: %v\n%s", trial, err, src)
		}
		res := Run(p, Config{Inputs: LiveInputs{OS: oskit.NewWorld(1)}, Seed: 1})
		if res.Err != nil {
			t.Fatalf("trial %d run: %v\n%s", trial, res.Err, src)
		}
		want := fmt.Sprintf("%d\n", ref(env))
		if string(res.Output) != want {
			t.Fatalf("trial %d: VM got %q, reference %q\nexpr: %s",
				trial, res.Output, want, exprSrc)
		}
	}
}

// TestPropertySumLoop checks the VM against closed-form arithmetic for
// random loop bounds and strides.
func TestPropertySumLoop(t *testing.T) {
	f := func(n0 uint8, stride0 uint8) bool {
		n := int64(n0%100) + 1
		stride := int64(stride0%7) + 1
		src := fmt.Sprintf(`
int main(void) {
    int s = 0;
    for (int i = 0; i < %d; i += %d) {
        s += i;
    }
    print(s);
    return 0;
}`, n, stride)
		file, err := parser.Parse("q.mc", src)
		if err != nil {
			return false
		}
		info, err := types.Check(file)
		if err != nil {
			return false
		}
		p, err := Compile(info)
		if err != nil {
			return false
		}
		res := Run(p, Config{Inputs: LiveInputs{OS: oskit.NewWorld(1)}, Seed: 1})
		if res.Err != nil {
			return false
		}
		want := int64(0)
		for i := int64(0); i < n; i += stride {
			want += i
		}
		return strings.TrimSpace(string(res.Output)) == fmt.Sprintf("%d", want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyDeterminism: for random seeds, running twice with the same
// seed gives identical results on a racy program.
func TestPropertyDeterminism(t *testing.T) {
	src := `
int g;
void w(int n) { for (int i = 0; i < n; i++) { int t = g; g = t + 1; } }
int main(void) {
    int t1 = spawn(w, 100);
    int t2 = spawn(w, 100);
    join(t1); join(t2);
    print(g);
    return 0;
}`
	file := parser.MustParse("q.mc", src)
	info := types.MustCheck(file)
	p := MustCompile(info)
	f := func(seed uint64) bool {
		r1 := Run(p, Config{Inputs: LiveInputs{OS: oskit.NewWorld(1)}, Seed: seed})
		r2 := Run(p, Config{Inputs: LiveInputs{OS: oskit.NewWorld(1)}, Seed: seed})
		return r1.Err == nil && r2.Err == nil && r1.Hash64() == r2.Hash64()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
