package vm

import (
	"sort"

	"repro/internal/minic/types"
	"repro/internal/weaklock"
)

// OutputKey serializes output operations (print, prints, write, send).
// The kernel orders concurrent writes to one descriptor with its own locks;
// recording that order is part of recording syscall happens-before.
var OutputKey = SyncKey{Class: SyncMutex, ID: 1}

// SpawnKey serializes thread creation so thread IDs are deterministic
// across record and replay.
var SpawnKey = SyncKey{Class: SyncSpawn, ID: 0}

type mutexState struct {
	owner   int // -1 when free
	waiters []*thread
}

type barrierState struct {
	n       int
	arrived []*thread
}

type condState struct {
	waiters []*thread
}

// wlHolder is one (thread, range) currently holding a weak-lock.
type wlHolder struct {
	tid    int
	lo, hi int64
}

// wlWaiter is a thread stalled on a weak-lock, with the timeout deadline
// fixed at first stall (paper §2.3).
type wlWaiter struct {
	t        *thread
	lo, hi   int64
	deadline int64
}

type wlLockState struct {
	holders []wlHolder
	waiters []wlWaiter
}

func (m *machine) mutex(addr int64) *mutexState {
	mu, ok := m.mutexes[addr]
	if !ok {
		mu = &mutexState{owner: -1}
		m.mutexes[addr] = mu
	}
	return mu
}

func (m *machine) wlock(id weaklock.ID) *wlLockState {
	s, ok := m.wlocks[id]
	if !ok {
		s = &wlLockState{}
		m.wlocks[id] = s
	}
	return s
}

// IOKey serializes shared-device input operations under deterministic
// execution (the simulated analog of the kernel ordering reads on a
// descriptor).
var IOKey = SyncKey{Class: SyncMutex, ID: 2}

// gate consults the deterministic arbiter and/or the replay/record monitor
// before a sync operation. It returns false (and parks t) when the thread
// must wait its turn.
func (m *machine) gate(t *thread, key SyncKey, kind SyncEventKind) bool {
	if m.cfg.Deterministic && !m.detMayProceed(t) {
		t.detParked = true
		m.block(t)
		return false
	}
	if m.cfg.Monitor == nil {
		return true
	}
	if m.cfg.Monitor.TryProceed(key, kind, t.id) {
		return true
	}
	m.gateWaiters[key] = append(m.gateWaiters[key], t)
	m.block(t)
	return false
}

// detClock is the deterministic logical clock: a pure function of executed
// instructions and (deterministic) wakeup boosts, never of simulated time.
func detClock(t *thread) int64 { return t.instrCount + t.detBoost }

// detMayProceed implements the Kendo-style arbitration rule: a thread may
// perform a synchronization operation only when its logical clock is
// strictly minimal (ties broken by thread id) among every thread that
// could still contend — running threads and arbiter-parked threads.
// Threads blocked on a resource are excluded; their clock is
// fast-forwarded past their waker's when they wake, so they can never
// contend "in the past".
func (m *machine) detMayProceed(t *thread) bool {
	dct := detClock(t)
	for _, u := range m.threads {
		if u == t || u.state == tDone {
			continue
		}
		if u.state == tBlocked && !u.detParked {
			continue // resource-blocked: excluded until woken (and boosted)
		}
		dcu := detClock(u)
		if dcu < dct || (dcu == dct && u.id < t.id) {
			return false
		}
	}
	return true
}

// boostWake fast-forwards a woken sleeper's logical clock past its waker's
// so arbitration decisions stay deterministic.
func (m *machine) boostWake(w, waker *thread) {
	if !m.cfg.Deterministic || waker == nil {
		return
	}
	want := detClock(waker) + 1
	if detClock(w) < want {
		w.detBoost = want - w.instrCount
	}
}

// wakeDetParked makes every arbiter-parked thread re-check its turn.
func (m *machine) wakeDetParked() {
	if !m.cfg.Deterministic {
		return
	}
	for _, t := range m.threads {
		if t.detParked && t.state == tBlocked {
			t.detParked = false
			m.wake(t, t.clock)
		}
	}
}

// wakeMinDetParked wakes only the arbiter-parked thread with the minimal
// logical clock; used when no thread is runnable (the minimum necessarily
// has its turn).
func (m *machine) wakeMinDetParked() bool {
	if !m.cfg.Deterministic {
		return false
	}
	var best *thread
	for _, t := range m.threads {
		if !t.detParked || t.state != tBlocked {
			continue
		}
		if best == nil || detClock(t) < detClock(best) ||
			(detClock(t) == detClock(best) && t.id < best.id) {
			best = t
		}
	}
	if best == nil {
		return false
	}
	best.detParked = false
	m.wake(best, best.clock)
	return true
}

// commit records a sync event in its final order, charges the bookkeeping
// cost, and wakes threads gated on the same key. Original-program sync
// only; weak-lock events go through commitWL so costs attribute to the
// acquire site's granularity.
func (m *machine) commit(t *thread, key SyncKey, kind SyncEventKind) {
	cost := m.commitRaw(t, key, kind)
	if cost < 0 {
		return
	}
	m.counters.SyncLogs++
	m.counters.SyncLogCyc += cost
}

// commitWL commits a weak-lock event, attributing the log cost to the
// site's granularity (one lock may guard sites of different
// granularities).
func (m *machine) commitWL(t *thread, key SyncKey, wlKind weaklock.Kind, kind SyncEventKind) {
	cost := m.commitRaw(t, key, kind)
	if cost < 0 {
		return
	}
	m.wlStats.Logs[wlKind]++
	m.wlStats.LogCycles[wlKind] += cost
}

func (m *machine) commitRaw(t *thread, key SyncKey, kind SyncEventKind) int64 {
	if m.cfg.Monitor == nil {
		return -1
	}
	cost := m.cfg.Monitor.Commit(key, kind, t.id, t.clock)
	t.clock += cost
	t.syncSeq++
	m.wakeGated(key)
	return cost
}

// wakeGated wakes every thread parked on key's replay gate.
func (m *machine) wakeGated(key SyncKey) {
	if ws := m.gateWaiters[key]; len(ws) > 0 {
		delete(m.gateWaiters, key)
		for _, w := range ws {
			m.wake(w, w.clock)
		}
	}
}

// syncEvent delivers a sync operation to the observation event stream; it
// is interleaved with memory-access events in exact program order so
// happens-before observers reconstruct the same relation the old
// synchronous hooks saw.
func (m *machine) syncEvent(key SyncKey, kind SyncEventKind, tid int, clock int64) {
	if m.observing {
		m.emitSync(key, kind, tid, clock)
	}
}

// finish completes a builtin: pops its arguments, pushes the result if any,
// advances the pc and charges cost.
func (m *machine) finish(t *thread, nargs int, cost int64, hasRet bool, ret int64) {
	t.popN(nargs)
	if hasRet {
		t.push(ret)
	}
	f := &t.frames[len(t.frames)-1]
	f.pc++
	t.clock += cost
	t.instrCount++
	m.counters.Instrs++
}

// doBuiltin executes builtin op for t. Returns false if the thread blocked
// (the instruction will re-execute on wake), finished, or faulted.
func (m *machine) doBuiltin(t *thread, f *frame, op types.BuiltinOp, nargs int, in Instr) bool {
	args := t.peekN(nargs)

	switch op {
	// -------------------------------------------------------------- threads
	case types.BSpawn:
		if !m.gate(t, SpawnKey, EvSpawn) {
			return false
		}
		fnIdx := FuncIndexOf(args[0], len(m.prog.Funcs))
		if fnIdx < 0 {
			m.fail(t, "spawn of non-function value %d", args[0])
			return false
		}
		child, err := m.newThread(fnIdx, []int64{args[1]}, t.clock+m.cost.SyncOp)
		if err != nil {
			m.fail(t, "spawn: %v", err)
			return false
		}
		m.counters.Spawns++
		m.counters.SyncOps++
		m.commit(t, SpawnKey, EvSpawn)
		m.syncEvent(SyncKey{SyncSpawn, int64(child.id)}, EvSpawn, t.id, t.clock)
		m.finish(t, nargs, m.cost.SyncOp, true, int64(child.id))
		return true

	case types.BJoin:
		tid := args[0]
		if tid < 0 || tid >= int64(len(m.threads)) {
			m.fail(t, "join of invalid thread %d", tid)
			return false
		}
		child := m.threads[tid]
		m.counters.SyncOps++
		if child.state == tDone {
			m.finish(t, nargs, m.cost.SyncOp, false, 0)
			if child.clock > t.clock {
				m.counters.SyncWait += child.clock - t.clock
				t.clock = child.clock
			}
			m.syncEvent(SyncKey{SyncSpawn, tid}, EvJoin, t.id, t.clock)
			return true
		}
		// Park after completing the operation; the child's exit wakes us.
		m.finish(t, nargs, m.cost.SyncOp, false, 0)
		child.exitWaiters = append(child.exitWaiters, t)
		m.block(t)
		return false

	// ------------------------------------------------------------- mutexes
	case types.BLock:
		mu := m.mutex(args[0])
		if !m.gate(t, SyncKey{SyncMutex, args[0]}, EvAcquire) {
			return false
		}
		if mu.owner == t.id {
			m.fail(t, "recursive lock of mutex %d", args[0])
			return false
		}
		if mu.owner != -1 {
			mu.addWaiter(t)
			m.block(t)
			return false
		}
		mu.owner = t.id
		mu.removeWaiter(t)
		m.counters.SyncOps++
		m.counters.SyncWait += m.unblocked(t)
		m.commit(t, SyncKey{SyncMutex, args[0]}, EvAcquire)
		m.syncEvent(SyncKey{SyncMutex, args[0]}, EvAcquire, t.id, t.clock)
		m.finish(t, nargs, m.cost.SyncOp, false, 0)
		return true

	case types.BUnlock:
		mu := m.mutex(args[0])
		if mu.owner != t.id {
			m.fail(t, "unlock of mutex %d not held (owner %d)", args[0], mu.owner)
			return false
		}
		mu.owner = -1
		m.counters.SyncOps++
		m.syncEvent(SyncKey{SyncMutex, args[0]}, EvRelease, t.id, t.clock)
		m.finish(t, nargs, m.cost.SyncOp, false, 0)
		for _, w := range mu.waiters {
			m.boostWake(w, t)
			m.wake(w, t.clock)
		}
		return true

	// ------------------------------------------------------------ barriers
	case types.BBarrierInit:
		b, ok := m.barriers[args[0]]
		if !ok {
			b = &barrierState{}
			m.barriers[args[0]] = b
		}
		if args[1] <= 0 {
			m.fail(t, "barrier_init with count %d", args[1])
			return false
		}
		b.n = int(args[1])
		m.counters.SyncOps++
		m.finish(t, nargs, m.cost.SyncOp, false, 0)
		return true

	case types.BBarrierWait:
		b, ok := m.barriers[args[0]]
		if !ok || b.n == 0 {
			m.fail(t, "barrier_wait on uninitialized barrier %d", args[0])
			return false
		}
		if !m.gate(t, SyncKey{SyncBarrier, args[0]}, EvBarrierArrive) {
			return false
		}
		m.counters.SyncOps++
		m.counters.SyncWait += m.unblocked(t)
		m.commit(t, SyncKey{SyncBarrier, args[0]}, EvBarrierArrive)
		m.syncEvent(SyncKey{SyncBarrier, args[0]}, EvBarrierArrive, t.id, t.clock)
		m.finish(t, nargs, m.cost.SyncOp, false, 0)
		if len(b.arrived)+1 < b.n {
			b.arrived = append(b.arrived, t)
			m.block(t)
			return false
		}
		// Last arrival releases the generation.
		release := t.clock
		for _, w := range b.arrived {
			if w.blocking {
				w.blocking = false
				if release > w.blockStart {
					m.counters.SyncWait += release - w.blockStart
				}
			}
			m.boostWake(w, t)
			m.wake(w, release)
			m.syncEvent(SyncKey{SyncBarrier, args[0]}, EvBarrierRelease, w.id, release)
		}
		m.syncEvent(SyncKey{SyncBarrier, args[0]}, EvBarrierRelease, t.id, release)
		b.arrived = b.arrived[:0]
		return true

	// --------------------------------------------------- condition variables
	case types.BCondWait:
		cv, ok := m.conds[args[0]]
		if !ok {
			cv = &condState{}
			m.conds[args[0]] = cv
		}
		if t.resume == resumeCondRelock {
			// Phase 2: re-acquire the mutex after being signaled.
			mu := m.mutex(t.condMutex)
			if !m.gate(t, SyncKey{SyncMutex, t.condMutex}, EvAcquire) {
				return false
			}
			if mu.owner != -1 {
				mu.addWaiter(t)
				m.block(t)
				return false
			}
			mu.owner = t.id
			mu.removeWaiter(t)
			t.resume = resumeNone
			m.counters.SyncWait += m.unblocked(t)
			m.commit(t, SyncKey{SyncMutex, t.condMutex}, EvAcquire)
			m.syncEvent(SyncKey{SyncMutex, t.condMutex}, EvAcquire, t.id, t.clock)
			m.finish(t, nargs, m.cost.SyncOp, false, 0)
			return true
		}
		// Phase 1: release the mutex and park on the condition.
		if !m.gate(t, SyncKey{SyncCond, args[0]}, EvCondWait) {
			return false
		}
		mu := m.mutex(args[1])
		if mu.owner != t.id {
			m.fail(t, "cond_wait: mutex %d not held", args[1])
			return false
		}
		m.counters.SyncOps++
		m.commit(t, SyncKey{SyncCond, args[0]}, EvCondWait)
		m.syncEvent(SyncKey{SyncCond, args[0]}, EvCondWait, t.id, t.clock)
		mu.owner = -1
		m.syncEvent(SyncKey{SyncMutex, args[1]}, EvRelease, t.id, t.clock)
		for _, w := range mu.waiters {
			m.boostWake(w, t)
			m.wake(w, t.clock)
		}
		t.resume = resumeCondRelock
		t.condMutex = args[1]
		cv.waiters = append(cv.waiters, t)
		m.block(t)
		return false

	case types.BCondSignal, types.BCondBcast:
		cv, ok := m.conds[args[0]]
		if !ok {
			cv = &condState{}
			m.conds[args[0]] = cv
		}
		kind := EvCondSignal
		if op == types.BCondBcast {
			kind = EvCondBcast
		}
		if !m.gate(t, SyncKey{SyncCond, args[0]}, kind) {
			return false
		}
		m.counters.SyncOps++
		m.commit(t, SyncKey{SyncCond, args[0]}, kind)
		m.syncEvent(SyncKey{SyncCond, args[0]}, kind, t.id, t.clock)
		n := 1
		if op == types.BCondBcast {
			n = len(cv.waiters)
		}
		for i := 0; i < n && len(cv.waiters) > 0; i++ {
			w := cv.waiters[0]
			cv.waiters = cv.waiters[1:]
			if w.blocking {
				w.blocking = false
				if t.clock > w.blockStart {
					m.counters.SyncWait += t.clock - w.blockStart
				}
			}
			m.boostWake(w, t)
			m.wake(w, t.clock)
			m.syncEvent(SyncKey{SyncCond, args[0]}, EvCondWake, w.id, t.clock)
		}
		m.finish(t, nargs, m.cost.SyncOp, false, 0)
		return true

	// -------------------------------------------------------------- memory
	case types.BMalloc:
		n := args[0]
		if n < 0 {
			m.fail(t, "malloc(%d)", n)
			return false
		}
		if n == 0 {
			n = 1
		}
		if m.heapTop+n > m.stackBase {
			m.fail(t, "out of heap memory (%d words requested)", n)
			return false
		}
		addr := m.heapTop
		m.heapTop += n
		m.finish(t, nargs, m.cost.Malloc, true, addr)
		return true

	case types.BFree:
		// The simulated heap does not recycle; free is a no-op.
		m.finish(t, nargs, m.cost.Instr, false, 0)
		return true

	// ----------------------------------------------------------------- I/O
	case types.BOpen, types.BRead, types.BAccept, types.BRecv, types.BNow, types.BRnd:
		return m.doInput(t, op, nargs, args)

	case types.BWrite, types.BSend:
		if !m.gate(t, OutputKey, EvRelease) {
			return false
		}
		buf, n := args[1], args[2]
		if n < 0 || (n > 0 && (!m.validAddr(buf) || !m.validAddr(buf+n-1))) {
			m.fail(t, "%s: bad buffer [%d,%d)", types.BuiltinName(op), buf, buf+n)
			return false
		}
		sendData := make([]int64, n)
		copy(sendData, m.mem[buf:buf+n])
		val, _, ready, pcost, err := m.cfg.Inputs.Input(t.id, op, args, sendData, t.clock)
		if err != nil {
			m.fail(t, "%s: %v", types.BuiltinName(op), err)
			return false
		}
		m.commit(t, OutputKey, EvRelease)
		if ready > t.clock {
			m.counters.IOWait += ready - t.clock
			t.clock = ready
		}
		m.finish(t, nargs, m.cost.Syscall+pcost, true, val)
		return true

	case types.BClose:
		m.finish(t, nargs, m.cost.Syscall, false, 0)
		return true

	// -------------------------------------------------------------- output
	case types.BPrint:
		if !m.gate(t, OutputKey, EvRelease) {
			return false
		}
		m.commit(t, OutputKey, EvRelease)
		m.appendPrint(args[0])
		m.finish(t, nargs, m.cost.Instr, false, 0)
		return true

	case types.BPrints:
		if !m.gate(t, OutputKey, EvRelease) {
			return false
		}
		m.commit(t, OutputKey, EvRelease)
		if !m.appendPrints(t, args[0]) {
			return false
		}
		m.finish(t, nargs, m.cost.Instr, false, 0)
		return true

	case types.BExit:
		m.exitCode = args[0]
		m.exited = true
		m.finish(t, nargs, m.cost.Instr, false, 0)
		return false

	case types.BCheck:
		if args[0] == 0 {
			m.fail(t, "check failed (node %d in %s)", in.Node, f.fn.Name)
			return false
		}
		m.finish(t, nargs, m.cost.Instr, false, 0)
		return true

	// ---------------------------------------------------------- weak-locks
	case types.BWlAcquire:
		return m.wlAcquire(t, nargs, args)
	case types.BWlRelease:
		return m.wlRelease(t, nargs, args)
	}

	m.fail(t, "unimplemented builtin %s", types.BuiltinName(op))
	return false
}

func (mu *mutexState) addWaiter(t *thread) {
	for _, w := range mu.waiters {
		if w == t {
			return
		}
	}
	mu.waiters = append(mu.waiters, t)
}

func (mu *mutexState) removeWaiter(t *thread) {
	for i, w := range mu.waiters {
		if w == t {
			mu.waiters = append(mu.waiters[:i], mu.waiters[i+1:]...)
			return
		}
	}
}

// doInput performs a nondeterministic-input builtin via the InputProvider.
// Under deterministic execution, shared-device input is serialized on the
// IO key and now() returns logical time, so input values depend only on
// the (deterministic) operation order, not on simulated timing.
func (m *machine) doInput(t *thread, op types.BuiltinOp, nargs int, args []int64) bool {
	if m.cfg.Deterministic {
		if !m.gate(t, IOKey, EvAcquire) {
			return false
		}
		if op == types.BNow {
			m.finish(t, nargs, m.cost.Instr, true, detClock(t))
			return true
		}
	}
	val, data, ready, pcost, err := m.cfg.Inputs.Input(t.id, op, args, nil, t.clock)
	if err != nil {
		m.fail(t, "%s: %v", types.BuiltinName(op), err)
		return false
	}
	m.counters.InputOps++
	if pcost > 0 {
		m.counters.InputLogs++
		m.counters.InputCyc += pcost
	}
	// Reads deposit data into the user buffer.
	if op == types.BRead || op == types.BRecv {
		buf := args[1]
		if len(data) > 0 {
			if !m.validAddr(buf) || !m.validAddr(buf+int64(len(data))-1) {
				m.fail(t, "%s: bad buffer %d (+%d)", types.BuiltinName(op), buf, len(data))
				return false
			}
			copy(m.mem[buf:buf+int64(len(data))], data)
			m.counters.MemOps += int64(len(data))
		}
	}
	if ready > t.clock {
		m.counters.IOWait += ready - t.clock
		t.clock = ready
	}
	cost := m.cost.Syscall + pcost
	if op == types.BNow || op == types.BRnd {
		cost = m.cost.Instr + pcost // cheap vDSO-style calls
	}
	m.finish(t, nargs, cost, true, val)
	return true
}

// ---------------------------------------------------------------------------
// Weak-lock runtime (paper §2.2-2.3)

// wlConflict returns the holders of id that conflict with (tid, lo, hi).
func (s *wlLockState) wlConflict(tid int, lo, hi int64) []wlHolder {
	var out []wlHolder
	for _, h := range s.holders {
		if h.tid != tid && weaklock.RangesOverlap(h.lo, h.hi, lo, hi) {
			out = append(out, h)
		}
	}
	return out
}

func (s *wlLockState) addWaiter(t *thread, lo, hi, deadline int64) {
	for _, w := range s.waiters {
		if w.t == t {
			return // deadline fixed at first stall
		}
	}
	s.waiters = append(s.waiters, wlWaiter{t: t, lo: lo, hi: hi, deadline: deadline})
}

func (s *wlLockState) removeWaiter(t *thread) {
	for i, w := range s.waiters {
		if w.t == t {
			s.waiters = append(s.waiters[:i], s.waiters[i+1:]...)
			return
		}
	}
}

func (s *wlLockState) removeHolder(tid int) bool {
	for i, h := range s.holders {
		if h.tid == tid {
			s.holders = append(s.holders[:i], s.holders[i+1:]...)
			return true
		}
	}
	return false
}

func (m *machine) wlDesc(t *thread, id int64) *weaklock.Descriptor {
	if m.cfg.WL == nil {
		m.fail(t, "weak-lock builtin without a lock table")
		return nil
	}
	d := m.cfg.WL.Lock(weaklock.ID(id))
	if d == nil {
		m.fail(t, "unknown weak-lock %d", id)
	}
	return d
}

func (m *machine) wlAcquire(t *thread, nargs int, args []int64) bool {
	kind := weaklock.Kind(args[0])
	id := args[1]
	lo, hi := args[2], args[3]
	if kind < 0 || kind >= weaklock.NumKinds {
		m.fail(t, "weak-lock acquire with bad kind %d", args[0])
		return false
	}
	d := m.wlDesc(t, id)
	if d == nil {
		return false
	}
	ranged := !(lo == weaklock.NegInf && hi == weaklock.PosInf)
	blocked, ok := m.wlTryAcquire(t, d, kind, lo, hi)
	if !ok || blocked {
		return false
	}
	cost := m.cost.WeakLockOp
	if ranged {
		cost += m.cost.RangeCheck
	}
	m.finish(t, nargs, cost, false, 0)
	return true
}

// wlTryAcquire attempts the acquisition; returns (blocked, ok). ok=false
// means a fatal error occurred. Weak-locks are reentrant: re-acquisition by
// the holder increments the depth and widens the held range.
func (m *machine) wlTryAcquire(t *thread, d *weaklock.Descriptor, kind weaklock.Kind, lo, hi int64) (blocked, ok bool) {
	s := m.wlock(d.ID)

	// Reentrant fast path: no gating, no logging — the lock is already
	// held and ordered.
	for i := range t.held {
		if t.held[i].id == d.ID {
			t.held[i].depth++
			if lo < t.held[i].lo {
				t.held[i].lo = lo
			}
			if hi > t.held[i].hi {
				t.held[i].hi = hi
			}
			for j := range s.holders {
				if s.holders[j].tid == t.id {
					if lo < s.holders[j].lo {
						s.holders[j].lo = lo
					}
					if hi > s.holders[j].hi {
						s.holders[j].hi = hi
					}
				}
			}
			m.wlStats.Acquires[kind]++
			m.wlSites[d.ID].ReentrantAcquires++
			return false, true
		}
	}

	key := SyncKey{SyncWeakLock, int64(d.ID)}
	if !m.gate(t, key, EvWLAcquire) {
		// Gated by the replay order log: not a stall; no timeout arms.
		return true, true
	}
	if len(s.wlConflict(t.id, lo, hi)) > 0 {
		s.addWaiter(t, lo, hi, t.clock+m.wlTimeout)
		m.block(t)
		return true, true
	}
	if m.cfg.CheckLockOrder && len(t.held) > 0 {
		last := t.held[len(t.held)-1]
		if last.kind > kind || (last.kind == kind && last.id >= d.ID) {
			m.fail(t, "weak-lock order violation: %s-lock %d acquired while holding %s-lock %d",
				kind, d.ID, last.kind, last.id)
			return false, false
		}
	}
	s.removeWaiter(t)
	s.holders = append(s.holders, wlHolder{tid: t.id, lo: lo, hi: hi})
	t.held = append(t.held, heldWL{id: d.ID, kind: kind, lo: lo, hi: hi, depth: 1, acquiredAt: t.clock})
	sort.Slice(t.held, func(i, j int) bool {
		if t.held[i].kind != t.held[j].kind {
			return t.held[i].kind < t.held[j].kind
		}
		return t.held[i].id < t.held[j].id
	})
	// unblocked consumes the thread's blocking episode, so capture the
	// stall once and attribute it to both the per-kind and per-site
	// accounting.
	stall := m.unblocked(t)
	m.wlStats.Contention[kind] += stall
	m.wlStats.Acquires[kind]++
	st := &m.wlSites[d.ID]
	st.Acquires++
	if stall > 0 {
		st.Contended++
		st.StallCycles += stall
	}
	m.commitWL(t, key, kind, EvWLAcquire)
	m.syncEvent(key, EvWLAcquire, t.id, t.clock)
	return false, true
}

func (m *machine) wlRelease(t *thread, nargs int, args []int64) bool {
	kind := weaklock.Kind(args[0])
	id := args[1]
	if kind < 0 || kind >= weaklock.NumKinds {
		m.fail(t, "weak-lock release with bad kind %d", args[0])
		return false
	}
	d := m.wlDesc(t, id)
	if d == nil {
		return false
	}
	idx := -1
	for i, h := range t.held {
		if h.id == d.ID {
			idx = i
			break
		}
	}
	if idx < 0 {
		m.fail(t, "release of weak-lock %d not held", d.ID)
		return false
	}
	// Reentrant inner release: just drop a level.
	if t.held[idx].depth > 1 {
		t.held[idx].depth--
		m.wlStats.Releases[kind]++
		m.wlSites[d.ID].ReentrantReleases++
		m.finish(t, nargs, m.cost.WeakLockOp, false, 0)
		return true
	}
	key := SyncKey{SyncWeakLock, int64(d.ID)}
	if !m.gate(t, key, EvWLRelease) {
		return false
	}
	t.held = append(t.held[:idx], t.held[idx+1:]...)
	s := m.wlock(d.ID)
	s.removeHolder(t.id)
	m.wlStats.Releases[kind]++
	m.wlSites[d.ID].Releases++
	m.commitWL(t, key, kind, EvWLRelease)
	m.syncEvent(key, EvWLRelease, t.id, t.clock)
	m.finish(t, nargs, m.cost.WeakLockOp, false, 0)
	for _, w := range s.waiters {
		m.boostWake(w.t, t)
		m.wake(w.t, t.clock)
	}
	return true
}

// wlReacquire re-acquires weak-locks lost to a forced preemption; returns
// false if the thread blocked.
func (m *machine) wlReacquire(t *thread) bool {
	for len(t.reacquire) > 0 {
		r := t.reacquire[0]
		d := m.cfg.WL.Lock(r.id)
		if d == nil {
			m.fail(t, "reacquire of unknown weak-lock %d", r.id)
			return false
		}
		blocked, ok := m.wlTryAcquire(t, d, r.kind, r.lo, r.hi)
		if !ok || blocked {
			return false
		}
		// Restore the pre-preemption reentrancy depth.
		for i := range t.held {
			if t.held[i].id == r.id {
				t.held[i].depth = r.depth
			}
		}
		t.reacquire = t.reacquire[1:]
	}
	return true
}

// fireTimeoutsBefore forces weak-lock releases whose stall deadline is at or
// before `now`. Returns true if any fired (paper §2.3: the kernel preempts
// the owner and forces it to release and reacquire).
func (m *machine) fireTimeoutsBefore(now int64) bool {
	fired := false
	for {
		id, w := m.earliestWLDeadline()
		if w == nil || w.deadline > now {
			return fired
		}
		m.forceRelease(id, *w)
		fired = true
	}
}

// fireEarliestTimeout forces the earliest pending weak-lock timeout, if any.
func (m *machine) fireEarliestTimeout() bool {
	id, w := m.earliestWLDeadline()
	if w == nil {
		return false
	}
	m.forceRelease(id, *w)
	return true
}

func (m *machine) earliestWLDeadline() (weaklock.ID, *wlWaiter) {
	var bestID weaklock.ID
	var best *wlWaiter
	for id, s := range m.wlocks {
		for i := range s.waiters {
			w := &s.waiters[i]
			if w.t.state != tBlocked {
				continue
			}
			if best == nil || w.deadline < best.deadline ||
				(w.deadline == best.deadline && id < bestID) {
				best = w
				bestID = id
			}
		}
	}
	return bestID, best
}

// forceRelease preempts the holders conflicting with the stalled waiter,
// forcing each to release now and reacquire before executing further. The
// forced release is committed to the order log with a deterministic anchor
// (instruction count, sync count, blocked flag) so replay reproduces the
// exact preemption (paper §2.3).
func (m *machine) forceRelease(id weaklock.ID, w wlWaiter) {
	s := m.wlock(id)
	key := SyncKey{SyncWeakLock, int64(id)}
	// Consume the waiter's stall record: if the retry stalls again, a
	// fresh timeout period starts (otherwise the same deadline would fire
	// forever).
	s.removeWaiter(w.t)
	conf := s.wlConflict(w.t.id, w.lo, w.hi)
	for _, h := range conf {
		owner := m.threads[h.tid]
		s.removeHolder(h.tid)
		var lost heldWL
		for i, held := range owner.held {
			if held.id == id {
				lost = held
				owner.held = append(owner.held[:i], owner.held[i+1:]...)
				break
			}
		}
		owner.reacquire = append(owner.reacquire, lost)
		if owner.clock < w.deadline {
			owner.clock = w.deadline
		}
		m.wlStats.Timeouts++
		m.wlStats.Releases[lost.kind]++
		m.wlSites[id].Forced++
		anchor := ForcedAnchor{
			Instr:   owner.instrCount,
			Sync:    owner.syncSeq,
			Blocked: owner.state == tBlocked,
		}
		if pm, ok := m.cfg.Monitor.(PreemptionMonitor); ok && m.cfg.Monitor != nil {
			cost := pm.CommitForced(key, owner.id, anchor, owner.clock)
			owner.clock += cost
			m.wlStats.Logs[lost.kind]++
			m.wlStats.LogCycles[lost.kind] += cost
			m.wakeGated(key)
		} else if m.cfg.Monitor != nil {
			m.commitWL(owner, key, lost.kind, EvWLForcedRelease)
		}
		m.syncEvent(key, EvWLForcedRelease, owner.id, owner.clock)
	}
	// The stalled waiter retries at the deadline.
	m.wake(w.t, w.deadline)
}

// ---------------------------------------------------------------------------
// Replay-side forced preemption injection

// pendingForced returns the next scheduled forced preemption for t whose
// anchor counters have been reached, if the monitor supplies a schedule.
func (m *machine) pendingForced(t *thread) (SyncKey, ForcedAnchor, bool) {
	pm, ok := m.cfg.Monitor.(PreemptionMonitor)
	if !ok {
		return SyncKey{}, ForcedAnchor{}, false
	}
	key, anchor, ok := pm.NextForced(t.id)
	if !ok {
		return SyncKey{}, ForcedAnchor{}, false
	}
	if t.instrCount != anchor.Instr || t.syncSeq != anchor.Sync {
		return SyncKey{}, ForcedAnchor{}, false
	}
	return key, anchor, true
}

// checkForcedAt fires a forced preemption anchored at t's current point
// before its next instruction. Returns (stop, fired): stop means the slice
// must end (the thread parked waiting for its turn on the key); fired means
// the preemption was injected and the slice should re-check state.
func (m *machine) checkForcedAt(t *thread) (stop, fired bool) {
	key, anchor, ok := m.pendingForced(t)
	if !ok || anchor.Blocked {
		// Blocked-anchored preemptions fire while the thread is parked
		// inside its operation, not before the operation executes.
		return false, false
	}
	if !m.cfg.Monitor.TryProceed(key, EvWLForcedRelease, t.id) {
		// Not this key's turn yet: park until the preceding events commit.
		m.gateWaiters[key] = append(m.gateWaiters[key], t)
		m.block(t)
		return true, false
	}
	if !m.doInjectForced(t, key, anchor) {
		return true, false // fatal
	}
	return false, true
}

// injectBlockedForced scans parked threads for due blocked-anchored
// preemptions and fires at most one; returns true if it did.
func (m *machine) injectBlockedForced() bool {
	if _, ok := m.cfg.Monitor.(PreemptionMonitor); !ok {
		return false
	}
	for _, t := range m.threads {
		if t.state != tBlocked {
			continue
		}
		key, anchor, ok := m.pendingForced(t)
		if !ok || !anchor.Blocked {
			continue
		}
		if !m.cfg.Monitor.TryProceed(key, EvWLForcedRelease, t.id) {
			continue // preceding events on the key must commit first
		}
		return m.doInjectForced(t, key, anchor)
	}
	return false
}

// doInjectForced performs the forced release of key's lock held by t,
// exactly as the recorded preemption did: the holding is removed, a
// reacquire obligation is queued, and the log record is consumed.
func (m *machine) doInjectForced(t *thread, key SyncKey, anchor ForcedAnchor) bool {
	id := weaklock.ID(key.ID)
	idx := -1
	for i, h := range t.held {
		if h.id == id {
			idx = i
			break
		}
	}
	if idx < 0 {
		m.fail(t, "replay divergence: forced preemption of weak-lock %d not held at anchor (%d,%d)",
			id, anchor.Instr, anchor.Sync)
		return false
	}
	lost := t.held[idx]
	t.held = append(t.held[:idx], t.held[idx+1:]...)
	s := m.wlock(id)
	s.removeHolder(t.id)
	t.reacquire = append(t.reacquire, lost)

	m.wlStats.Timeouts++
	m.wlStats.Releases[lost.kind]++
	m.wlSites[id].Forced++
	pm := m.cfg.Monitor.(PreemptionMonitor)
	cost := pm.CommitForced(key, t.id, anchor, t.clock)
	t.clock += cost
	m.wlStats.Logs[lost.kind]++
	m.wlStats.LogCycles[lost.kind] += cost
	m.syncEvent(key, EvWLForcedRelease, t.id, t.clock)
	m.wakeGated(key)
	for _, w := range s.waiters {
		m.wake(w.t, t.clock)
	}
	return true
}
