package vm

import (
	"strings"
	"testing"

	"repro/internal/minic/parser"
	"repro/internal/minic/types"
	"repro/internal/oskit"
)

func compileSrc(t *testing.T, src string) *Program {
	t.Helper()
	f := parser.MustParse("t.mc", src)
	info := types.MustCheck(f)
	p, err := Compile(info)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return p
}

func runSrc(t *testing.T, src string, seed uint64) *Result {
	t.Helper()
	p := compileSrc(t, src)
	w := oskit.NewWorld(1)
	r := Run(p, Config{Inputs: LiveInputs{OS: w}, Seed: seed})
	if r.Err != nil {
		t.Fatalf("run error: %v\noutput:\n%s", r.Err, r.Output)
	}
	return r
}

func runErr(t *testing.T, src string, wantSub string) {
	t.Helper()
	p := compileSrc(t, src)
	w := oskit.NewWorld(1)
	r := Run(p, Config{Inputs: LiveInputs{OS: w}, Seed: 1})
	if r.Err == nil {
		t.Fatalf("expected error containing %q, got none (output %q)", wantSub, r.Output)
	}
	if !strings.Contains(r.Err.Error(), wantSub) {
		t.Fatalf("error %q does not contain %q", r.Err, wantSub)
	}
}

func TestArithmetic(t *testing.T) {
	r := runSrc(t, `
int main(void) {
    print(2 + 3 * 4);
    print((2 + 3) * 4);
    print(17 / 5);
    print(17 % 5);
    print(-7 / 2);
    print(1 << 10);
    print(1024 >> 3);
    print(0xff & 0x0f);
    print(0xf0 | 0x0f);
    print(0xff ^ 0x0f);
    print(5 < 3);
    print(3 <= 3);
    print(4 > 3);
    print(!0);
    print(!42);
    print(-(5));
    return 0;
}`, 1)
	want := "14\n20\n3\n2\n-3\n1024\n128\n15\n255\n240\n0\n1\n1\n1\n0\n-5\n"
	if string(r.Output) != want {
		t.Errorf("output:\n%s\nwant:\n%s", r.Output, want)
	}
}

func TestShortCircuit(t *testing.T) {
	r := runSrc(t, `
int g = 0;
int bump(void) { g++; return 1; }
int main(void) {
    int a = 0 && bump();
    print(a); print(g);
    a = 1 || bump();
    print(a); print(g);
    a = 1 && bump();
    print(a); print(g);
    a = 0 || 0;
    print(a);
    return 0;
}`, 1)
	want := "0\n0\n1\n0\n1\n1\n0\n"
	if string(r.Output) != want {
		t.Errorf("output:\n%s\nwant:\n%s", r.Output, want)
	}
}

func TestControlFlow(t *testing.T) {
	r := runSrc(t, `
int main(void) {
    int s = 0;
    for (int i = 0; i < 10; i++) {
        if (i == 3) { continue; }
        if (i == 8) { break; }
        s += i;
    }
    print(s);
    int n = 0;
    while (n < 5) { n++; }
    print(n);
    int x = 7;
    print(x > 5 ? 100 : 200);
    return 0;
}`, 1)
	want := "25\n5\n100\n"
	if string(r.Output) != want {
		t.Errorf("output:\n%s\nwant:\n%s", r.Output, want)
	}
}

func TestPointersArraysStructs(t *testing.T) {
	r := runSrc(t, `
struct pair { int a; int b; };
struct pair gp;
int arr[10];
int mat[3][4];
int main(void) {
    for (int i = 0; i < 10; i++) { arr[i] = i * i; }
    print(arr[7]);
    int *p = &arr[2];
    print(*p);
    print(*(p + 3));
    p++;
    print(*p);
    gp.a = 11;
    gp.b = 22;
    struct pair *q = &gp;
    print(q->a + q->b);
    mat[2][3] = 99;
    print(mat[2][3]);
    int *flat = &mat[0][0];
    print(flat[2 * 4 + 3]);
    int local[4];
    local[0] = 5; local[1] = 6;
    print(local[0] + local[1]);
    print(sizeof(struct pair));
    return 0;
}`, 1)
	want := "49\n4\n25\n9\n33\n99\n99\n11\n2\n"
	if string(r.Output) != want {
		t.Errorf("output:\n%s\nwant:\n%s", r.Output, want)
	}
}

func TestMallocAndRecursion(t *testing.T) {
	r := runSrc(t, `
int fib(int n) {
    if (n < 2) { return n; }
    return fib(n - 1) + fib(n - 2);
}
int main(void) {
    int *buf = malloc(8);
    for (int i = 0; i < 8; i++) { buf[i] = fib(i); }
    for (int i = 0; i < 8; i++) { print(buf[i]); }
    free(buf);
    return 0;
}`, 1)
	want := "0\n1\n1\n2\n3\n5\n8\n13\n"
	if string(r.Output) != want {
		t.Errorf("output:\n%s\nwant:\n%s", r.Output, want)
	}
}

func TestFunctionPointers(t *testing.T) {
	r := runSrc(t, `
int inc(int x) { return x + 1; }
int twice(int x) { return x * 2; }
int apply(int f, int x) { return f(x); }
int main(void) {
    print(apply(inc, 10));
    print(apply(twice, 10));
    int fp = inc;
    print(fp(5));
    return 0;
}`, 1)
	want := "11\n20\n6\n"
	if string(r.Output) != want {
		t.Errorf("output:\n%s\nwant:\n%s", r.Output, want)
	}
}

func TestStringsAndPrints(t *testing.T) {
	r := runSrc(t, `
int main(void) {
    prints("hello ");
    prints("world\n");
    int *s = "abc";
    print(s[0]);
    return 0;
}`, 1)
	want := "hello world\n97\n"
	if string(r.Output) != want {
		t.Errorf("output:\n%s\nwant:\n%s", r.Output, want)
	}
}

func TestGlobalInit(t *testing.T) {
	r := runSrc(t, `
int a = 5;
int b = 5 * 4 + 2;
int c = -3;
int *s = "xy";
int main(void) {
    print(a); print(b); print(c); print(s[1]);
    return 0;
}`, 1)
	want := "5\n22\n-3\n121\n"
	if string(r.Output) != want {
		t.Errorf("output:\n%s\nwant:\n%s", r.Output, want)
	}
}

func TestSpawnJoin(t *testing.T) {
	r := runSrc(t, `
int results[4];
void worker(int id) {
    int s = 0;
    for (int i = 0; i <= id * 10; i++) { s += i; }
    results[id] = s;
}
int main(void) {
    int tids[4];
    for (int i = 0; i < 4; i++) { tids[i] = spawn(worker, i); }
    for (int i = 0; i < 4; i++) { join(tids[i]); }
    for (int i = 0; i < 4; i++) { print(results[i]); }
    return 0;
}`, 7)
	want := "0\n55\n210\n465\n"
	if string(r.Output) != want {
		t.Errorf("output:\n%s\nwant:\n%s", r.Output, want)
	}
	if r.Threads != 5 {
		t.Errorf("threads = %d, want 5", r.Threads)
	}
}

func TestMutexCounter(t *testing.T) {
	// With the lock, the final count is exact regardless of seed.
	src := `
int m;
int count;
void worker(int n) {
    for (int i = 0; i < n; i++) {
        lock(&m);
        count = count + 1;
        unlock(&m);
    }
}
int main(void) {
    int t1 = spawn(worker, 500);
    int t2 = spawn(worker, 500);
    join(t1); join(t2);
    print(count);
    return 0;
}`
	for seed := uint64(0); seed < 4; seed++ {
		r := runSrc(t, src, seed)
		if string(r.Output) != "1000\n" {
			t.Errorf("seed %d: output %q, want 1000", seed, r.Output)
		}
		if r.Counters.SyncOps == 0 {
			t.Errorf("no sync ops counted")
		}
	}
}

func TestRacyCounterLosesUpdates(t *testing.T) {
	// Without the lock, some increments are lost under at least one seed —
	// the VM interleaves at instruction granularity.
	src := `
int count;
void worker(int n) {
    for (int i = 0; i < n; i++) {
        int tmp = count;
        count = tmp + 1;
    }
}
int main(void) {
    int t1 = spawn(worker, 2000);
    int t2 = spawn(worker, 2000);
    join(t1); join(t2);
    print(count);
    return 0;
}`
	lost := false
	for seed := uint64(0); seed < 8; seed++ {
		r := runSrc(t, src, seed)
		if string(r.Output) != "4000\n" {
			lost = true
		}
	}
	if !lost {
		t.Errorf("racy counter never lost an update across 8 seeds; interleaving too coarse")
	}
}

func TestBarrier(t *testing.T) {
	r := runSrc(t, `
int bar;
int phase1[3];
int sum;
void worker(int id) {
    phase1[id] = id + 1;
    barrier_wait(&bar);
    // After the barrier every phase1 entry is visible.
    if (id == 0) {
        sum = phase1[0] + phase1[1] + phase1[2];
    }
    barrier_wait(&bar);
}
int main(void) {
    barrier_init(&bar, 3);
    int t0 = spawn(worker, 0);
    int t1 = spawn(worker, 1);
    int t2 = spawn(worker, 2);
    join(t0); join(t1); join(t2);
    print(sum);
    return 0;
}`, 3)
	if string(r.Output) != "6\n" {
		t.Errorf("output %q, want 6", r.Output)
	}
}

func TestCondVar(t *testing.T) {
	r := runSrc(t, `
int m;
int cv;
int ready;
int data;
void producer(int x) {
    lock(&m);
    data = 42;
    ready = 1;
    cond_signal(&cv);
    unlock(&m);
}
int main(void) {
    int t1 = spawn(producer, 0);
    lock(&m);
    while (ready == 0) {
        cond_wait(&cv, &m);
    }
    print(data);
    unlock(&m);
    join(t1);
    return 0;
}`, 5)
	if string(r.Output) != "42\n" {
		t.Errorf("output %q, want 42", r.Output)
	}
}

func TestCondBroadcast(t *testing.T) {
	r := runSrc(t, `
int m;
int cv;
int go_flag;
int done;
void waiter(int id) {
    lock(&m);
    while (go_flag == 0) { cond_wait(&cv, &m); }
    done = done + 1;
    unlock(&m);
}
int main(void) {
    int t1 = spawn(waiter, 1);
    int t2 = spawn(waiter, 2);
    int t3 = spawn(waiter, 3);
    lock(&m);
    go_flag = 1;
    cond_broadcast(&cv);
    unlock(&m);
    join(t1); join(t2); join(t3);
    print(done);
    return 0;
}`, 9)
	if string(r.Output) != "3\n" {
		t.Errorf("output %q, want 3", r.Output)
	}
}

func TestFileIO(t *testing.T) {
	src := `
int main(void) {
    int fd = open(7);
    if (fd < 0) { print(-1); return 1; }
    int buf[16];
    int total = 0;
    int n = read(fd, buf, 16);
    while (n > 0) {
        for (int i = 0; i < n; i++) { total += buf[i]; }
        n = read(fd, buf, 16);
    }
    close(fd);
    print(total);
    return 0;
}`
	p := compileSrc(t, src)
	w := oskit.NewWorld(1)
	w.AddFile(7, []int64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18})
	r := Run(p, Config{Inputs: LiveInputs{OS: w}, Seed: 1})
	if r.Err != nil {
		t.Fatalf("run: %v", r.Err)
	}
	if string(r.Output) != "171\n" {
		t.Errorf("output %q, want 171", r.Output)
	}
	if r.Counters.IOWait == 0 {
		t.Errorf("expected nonzero IOWait for file reads")
	}
}

func TestNetworkServer(t *testing.T) {
	src := `
int main(void) {
    int served = 0;
    int conn = accept(0);
    while (conn >= 0) {
        int buf[8];
        int n = recv(conn, buf, 8);
        int resp[8];
        for (int i = 0; i < n; i++) { resp[i] = buf[i] * 2; }
        send(conn, resp, n);
        served++;
        conn = accept(0);
    }
    print(served);
    return 0;
}`
	p := compileSrc(t, src)
	w := oskit.NewWorld(1)
	w.AddConn(1000, []int64{1, 2, 3})
	w.AddConn(5000, []int64{10, 20})
	r := Run(p, Config{Inputs: LiveInputs{OS: w}, Seed: 1})
	if r.Err != nil {
		t.Fatalf("run: %v", r.Err)
	}
	if string(r.Output) != "2\n" {
		t.Errorf("output %q, want 2", r.Output)
	}
	conns := w.Conns()
	if len(conns[0].Sent) != 3 || conns[0].Sent[0] != 2 || conns[0].Sent[2] != 6 {
		t.Errorf("conn0 sent %v", conns[0].Sent)
	}
	if len(conns[1].Sent) != 2 || conns[1].Sent[1] != 40 {
		t.Errorf("conn1 sent %v", conns[1].Sent)
	}
}

func TestExitStopsEverything(t *testing.T) {
	r := runSrc(t, `
void worker(int x) {
    while (1) { }
}
int main(void) {
    spawn(worker, 0);
    print(1);
    exit(7);
    print(2);
    return 0;
}`, 1)
	if r.ExitCode != 7 {
		t.Errorf("exit code %d, want 7", r.ExitCode)
	}
	if string(r.Output) != "1\n" {
		t.Errorf("output %q", r.Output)
	}
}

func TestRuntimeErrors(t *testing.T) {
	runErr(t, `int main(void) { int *p = 0; return *p; }`, "invalid load")
	runErr(t, `int main(void) { int *p = 3; *p = 1; return 0; }`, "invalid store")
	runErr(t, `int main(void) { int a = 1; int b = 0; return a / b; }`, "division by zero")
	runErr(t, `int m; int main(void) { unlock(&m); return 0; }`, "unlock of mutex")
	runErr(t, `int m; int main(void) { lock(&m); lock(&m); return 0; }`, "recursive lock")
	runErr(t, `int main(void) { check(1 == 2); return 0; }`, "check failed")
	runErr(t, `int b; int main(void) { barrier_wait(&b); return 0; }`, "uninitialized barrier")
	runErr(t, `int main(void) { join(99); return 0; }`, "invalid thread")
	runErr(t, `
int rec(int n) { return rec(n + 1); }
int main(void) { return rec(0); }`, "stack overflow")
}

func TestDeadlockDetected(t *testing.T) {
	runErr(t, `
int a; int b;
void w(int x) { lock(&b); lock(&a); unlock(&a); unlock(&b); }
int main(void) {
    int t1 = spawn(w, 0);
    lock(&a);
    // Give the other thread time to grab b by spinning a while.
    for (int i = 0; i < 10000; i++) { }
    lock(&b);
    unlock(&b); unlock(&a);
    join(t1);
    return 0;
}`, "deadlock")
}

func TestDeterminismSameSeed(t *testing.T) {
	src := `
int count;
void worker(int n) {
    for (int i = 0; i < n; i++) { int tmp = count; count = tmp + 1; }
}
int main(void) {
    int t1 = spawn(worker, 300);
    int t2 = spawn(worker, 300);
    join(t1); join(t2);
    print(count);
    return 0;
}`
	r1 := runSrc(t, src, 42)
	r2 := runSrc(t, src, 42)
	if r1.Hash64() != r2.Hash64() || r1.Makespan != r2.Makespan {
		t.Errorf("same seed diverged: %x vs %x", r1.Hash64(), r2.Hash64())
	}
}

func TestMakespanReflectsParallelism(t *testing.T) {
	// Two workers doing N work each in parallel should take well under the
	// serial time of 2N.
	para := `
int sink;
void worker(int n) {
    int s = 0;
    for (int i = 0; i < n; i++) { s += i; }
    sink = s;
}
int main(void) {
    int t1 = spawn(worker, 20000);
    int t2 = spawn(worker, 20000);
    join(t1); join(t2);
    return 0;
}`
	serial := `
int sink;
void worker(int n) {
    int s = 0;
    for (int i = 0; i < n; i++) { s += i; }
    sink = s;
}
int main(void) {
    int t1 = spawn(worker, 20000);
    join(t1);
    int t2 = spawn(worker, 20000);
    join(t2);
    return 0;
}`
	rp := runSrc(t, para, 1)
	rs := runSrc(t, serial, 1)
	if float64(rp.Makespan) > 0.7*float64(rs.Makespan) {
		t.Errorf("parallel makespan %d not < 0.7 * serial %d", rp.Makespan, rs.Makespan)
	}
}

func TestCountersPopulated(t *testing.T) {
	r := runSrc(t, `
int m;
int g;
int main(void) {
    for (int i = 0; i < 100; i++) { lock(&m); g++; unlock(&m); }
    print(g);
    return 0;
}`, 1)
	if r.Counters.MemOps == 0 || r.Counters.Instrs == 0 {
		t.Errorf("counters not populated: %+v", r.Counters)
	}
	if r.Counters.SyncOps != 200 {
		t.Errorf("SyncOps = %d, want 200", r.Counters.SyncOps)
	}
}
