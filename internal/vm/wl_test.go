package vm

import (
	"strings"
	"testing"

	"repro/internal/minic/parser"
	"repro/internal/minic/types"
	"repro/internal/oskit"
	"repro/internal/weaklock"
)

// wlTable builds a table with n unranged instruction locks.
func wlTable(n int) *weaklock.Table {
	t := weaklock.NewTable()
	for i := 0; i < n; i++ {
		t.Add(weaklock.KindInstr, "t", false)
	}
	return t
}

func runWL(t *testing.T, src string, tbl *weaklock.Table, seed uint64, timeout int64) *Result {
	t.Helper()
	f := parser.MustParse("t.mc", src)
	info := types.MustCheck(f)
	p, err := Compile(info)
	if err != nil {
		t.Fatal(err)
	}
	w := oskit.NewWorld(1)
	return Run(p, Config{Inputs: LiveInputs{OS: w}, Seed: seed, WL: tbl, WLTimeout: timeout})
}

const inf = "-4611686018427387904, 4611686018427387904"

func TestWeakLockMutualExclusion(t *testing.T) {
	src := `
int g;
void worker(int n) {
    for (int i = 0; i < n; i++) {
        wl_acquire(3, 0, ` + inf + `);
        int tmp = g;
        g = tmp + 1;
        wl_release(3, 0);
    }
}
int main(void) {
    int t1 = spawn(worker, 500);
    int t2 = spawn(worker, 500);
    join(t1); join(t2);
    print(g);
    return 0;
}`
	for seed := uint64(0); seed < 4; seed++ {
		r := runWL(t, src, wlTable(1), seed, 0)
		if r.Err != nil {
			t.Fatalf("seed %d: %v", seed, r.Err)
		}
		if string(r.Output) != "1000\n" {
			t.Fatalf("seed %d: weak-lock failed to exclude: %q", seed, r.Output)
		}
		if r.WLStats.Acquires[weaklock.KindInstr] != 1000 {
			t.Fatalf("acquires %d", r.WLStats.Acquires[weaklock.KindInstr])
		}
		if r.WLStats.Timeouts != 0 {
			t.Fatalf("unexpected timeouts")
		}
	}
}

func TestRangedLocksDisjointRunParallel(t *testing.T) {
	// Two holders of the same lock with disjoint ranges must not contend.
	src := `
int arr[128];
void worker(int base) {
    int *p = arr;
    wl_acquire(1, 0, p + base, p + base + 63);
    for (int i = 0; i < 64; i++) {
        arr[base + i] = i;
    }
    wl_release(1, 0);
}
int main(void) {
    int t1 = spawn(worker, 0);
    int t2 = spawn(worker, 64);
    join(t1); join(t2);
    return 0;
}`
	tbl := weaklock.NewTable()
	tbl.Add(weaklock.KindLoop, "ranged", true)
	r := runWL(t, src, tbl, 1, 0)
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	if r.WLStats.Contention[weaklock.KindLoop] != 0 {
		t.Errorf("disjoint ranges contended: %d cycles", r.WLStats.Contention[weaklock.KindLoop])
	}
}

func TestRangedLocksOverlapSerialize(t *testing.T) {
	src := `
int arr[128];
void worker(int base) {
    int *p = arr;
    wl_acquire(1, 0, p, p + 127);
    for (int i = 0; i < 64; i++) {
        arr[base + i] = i;
    }
    wl_release(1, 0);
}
int main(void) {
    int t1 = spawn(worker, 0);
    int t2 = spawn(worker, 64);
    join(t1); join(t2);
    return 0;
}`
	tbl := weaklock.NewTable()
	tbl.Add(weaklock.KindLoop, "ranged", true)
	r := runWL(t, src, tbl, 1, 0)
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	if r.WLStats.Contention[weaklock.KindLoop] == 0 {
		t.Errorf("overlapping ranges should contend")
	}
}

func TestReentrantAcquire(t *testing.T) {
	src := `
int g;
int main(void) {
    wl_acquire(0, 0, ` + inf + `);
    wl_acquire(2, 0, ` + inf + `);
    g = 1;
    wl_release(2, 0);
    g = 2;
    wl_release(0, 0);
    print(g);
    return 0;
}`
	tbl := weaklock.NewTable()
	tbl.Add(weaklock.KindFunc, "f", false)
	r := runWL(t, src, tbl, 1, 0)
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	if string(r.Output) != "2\n" {
		t.Fatalf("output %q", r.Output)
	}
	// Outer + inner acquires both counted (at their site kinds).
	if r.WLStats.Acquires[weaklock.KindFunc] != 1 || r.WLStats.Acquires[weaklock.KindBB] != 1 {
		t.Fatalf("acquire counts %+v", r.WLStats.Acquires)
	}
}

func TestTimeoutForcesRelease(t *testing.T) {
	// The holder blocks on a condition variable inside a weak-locked
	// region (paper §2.3's motivating case). The waiter times out, the
	// holder is forcibly preempted, the waiter proceeds and signals, and
	// everyone finishes.
	src := `
int m;
int cv;
int flag;
int g;
void holder(int n) {
    wl_acquire(3, 0, ` + inf + `);
    g = 1;
    lock(&m);
    while (flag == 0) {
        cond_wait(&cv, &m);
    }
    unlock(&m);
    g = 2;
    wl_release(3, 0);
}
void waiter(int n) {
    wl_acquire(3, 0, ` + inf + `);
    g = g + 10;
    wl_release(3, 0);
    lock(&m);
    flag = 1;
    cond_signal(&cv);
    unlock(&m);
}
int main(void) {
    int t1 = spawn(holder, 0);
    // Let the holder grab the weak-lock and park on the condvar.
    for (int i = 0; i < 3000; i++) { }
    int t2 = spawn(waiter, 0);
    join(t1); join(t2);
    print(g);
    return 0;
}`
	r := runWL(t, src, wlTable(1), 3, 50_000)
	if r.Err != nil {
		t.Fatalf("run: %v", r.Err)
	}
	if r.WLStats.Timeouts == 0 {
		t.Fatalf("expected a weak-lock timeout (forced preemption)")
	}
	if string(r.Output) != "2\n" {
		t.Fatalf("output %q, want 2 (holder finished last)", r.Output)
	}
}

func TestTimeoutPreservesSingleHolderInvariant(t *testing.T) {
	// Even through forced preemptions, mutual exclusion holds whenever
	// both threads are actually inside the region: the increment below
	// stays exact because the forced release only happens while the
	// holder is parked on the condvar, and it reacquires before touching
	// g again.
	src := `
int m;
int cv;
int flag;
int count;
void holder(int n) {
    wl_acquire(3, 0, ` + inf + `);
    lock(&m);
    while (flag == 0) { cond_wait(&cv, &m); }
    unlock(&m);
    int tmp = count;
    count = tmp + 1;
    wl_release(3, 0);
}
void worker(int n) {
    for (int i = 0; i < n; i++) {
        wl_acquire(3, 0, ` + inf + `);
        int tmp = count;
        count = tmp + 1;
        wl_release(3, 0);
    }
    lock(&m);
    flag = 1;
    cond_signal(&cv);
    unlock(&m);
}
int main(void) {
    int t1 = spawn(holder, 0);
    for (int i = 0; i < 2000; i++) { }
    int t2 = spawn(worker, 200);
    join(t1); join(t2);
    print(count);
    return 0;
}`
	r := runWL(t, src, wlTable(1), 5, 20_000)
	if r.Err != nil {
		t.Fatalf("run: %v", r.Err)
	}
	if string(r.Output) != "201\n" {
		t.Fatalf("count %q, want 201 (no lost updates through preemption)", r.Output)
	}
	if r.WLStats.Timeouts == 0 {
		t.Fatalf("expected timeouts in this scenario")
	}
}

func TestLockOrderCheck(t *testing.T) {
	// Acquiring a coarser-kind lock while holding a finer one violates
	// the discipline; CheckLockOrder turns it into a fault.
	src := `
int main(void) {
    wl_acquire(3, 0, ` + inf + `);
    wl_acquire(0, 1, ` + inf + `);
    wl_release(0, 1);
    wl_release(3, 0);
    return 0;
}`
	f := parser.MustParse("t.mc", src)
	info := types.MustCheck(f)
	p, err := Compile(info)
	if err != nil {
		t.Fatal(err)
	}
	w := oskit.NewWorld(1)
	r := Run(p, Config{Inputs: LiveInputs{OS: w}, Seed: 1, WL: wlTable(2), CheckLockOrder: true})
	if r.Err == nil || !strings.Contains(r.Err.Error(), "order violation") {
		t.Fatalf("expected order violation, got %v", r.Err)
	}
}

func TestReleaseUnheldFaults(t *testing.T) {
	src := `
int main(void) {
    wl_release(3, 0);
    return 0;
}`
	r := runWL(t, src, wlTable(1), 1, 0)
	if r.Err == nil || !strings.Contains(r.Err.Error(), "not held") {
		t.Fatalf("expected release fault, got %v", r.Err)
	}
}

func TestUnknownLockFaults(t *testing.T) {
	src := `
int main(void) {
    wl_acquire(3, 7, ` + inf + `);
    return 0;
}`
	r := runWL(t, src, wlTable(1), 1, 0)
	if r.Err == nil || !strings.Contains(r.Err.Error(), "unknown weak-lock") {
		t.Fatalf("expected unknown-lock fault, got %v", r.Err)
	}
}
