// Package weaklock defines the static metadata and accounting for Chimera's
// weak-locks (paper §2.2-2.3).
//
// A weak-lock is a time-out lock inserted around potentially racing code.
// It provides enough mutual-exclusion structure to record and replay the
// order of racy accesses, but compromises mutual exclusion rather than
// deadlock: a stalled acquire forces the current owner to release and
// reacquire at a recorded preemption point.
//
// Weak-locks come in four granularities, from finest to coarsest:
//
//	Instr — one source statement (paper: one instruction)
//	BB    — a basic block of straight-line statements
//	Loop  — a whole loop, protecting a runtime address range derived by
//	        the symbolic bounds analysis (paper §5)
//	Func  — a whole function body, assigned via profile-driven clique
//	        analysis of non-concurrent functions (paper §4)
//
// The deadlock-freedom discipline (paper §2.3) is: within a granularity,
// locks are acquired in ascending ID order; across granularities, Func
// before Loop before BB before Instr; and an outer region releases its
// weak-locks around an inner region. The instrumenter enforces this
// statically and the VM runtime verifies it dynamically in debug mode.
package weaklock

import "fmt"

// Kind is the granularity of a weak-lock.
type Kind int

// The weak-lock granularities, ordered coarse-to-fine. The numeric order is
// the acquisition order: a thread's held locks are always sorted by
// (Kind, ID), with Func (0) outermost.
const (
	KindFunc Kind = iota
	KindLoop
	KindBB
	KindInstr
	NumKinds
)

// String returns the granularity name used in tables and figures.
func (k Kind) String() string {
	switch k {
	case KindFunc:
		return "func"
	case KindLoop:
		return "loop"
	case KindBB:
		return "bb"
	case KindInstr:
		return "instr"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// ID identifies a weak-lock within its table.
type ID int

// Address-range sentinels for loop-locks whose symbolic bounds analysis
// produced an unusable bound (paper §5.3: "if the derived symbolic
// expression for an address range is from negative infinity to positive
// infinity, we consider it to be too imprecise"). A loop-lock with infinite
// bounds conflicts with every other holder of the same lock.
const (
	NegInf = int64(-1) << 62
	PosInf = int64(1) << 62
)

// Descriptor is the static description of one weak-lock.
type Descriptor struct {
	ID   ID
	Kind Kind

	// Name labels the lock for reports: the clique ("clique3"), the
	// function pair, or the source location of the guarded region.
	Name string

	// Ranged is set for loop-locks whose acquire carries a runtime
	// [lo, hi] address range; unranged locks conflict purely by ID.
	Ranged bool
}

// Table holds all weak-locks created by the instrumenter for one program.
type Table struct {
	Locks []Descriptor
}

// NewTable returns an empty weak-lock table.
func NewTable() *Table { return &Table{} }

// Add appends a new lock and returns its ID.
func (t *Table) Add(kind Kind, name string, ranged bool) ID {
	id := ID(len(t.Locks))
	t.Locks = append(t.Locks, Descriptor{ID: id, Kind: kind, Name: name, Ranged: ranged})
	return id
}

// Lock returns the descriptor for id.
func (t *Table) Lock(id ID) *Descriptor {
	if int(id) < 0 || int(id) >= len(t.Locks) {
		return nil
	}
	return &t.Locks[id]
}

// Len returns the number of locks.
func (t *Table) Len() int { return len(t.Locks) }

// CountByKind returns how many locks of each kind the table holds.
func (t *Table) CountByKind() [NumKinds]int {
	var n [NumKinds]int
	for _, d := range t.Locks {
		n[d.Kind]++
	}
	return n
}

// Stats accumulates the per-kind dynamic costs of weak-locks during a run.
// These feed Table 2 (log counts), Figure 6 (operation proportions) and
// Figure 7 (logging vs contention breakdown).
type Stats struct {
	// Acquires and Releases count dynamic weak-lock operations by kind.
	Acquires [NumKinds]int64
	Releases [NumKinds]int64

	// Logs counts order-log records written for weak-lock events.
	Logs [NumKinds]int64

	// LogCycles is the simulated time spent writing those records.
	LogCycles [NumKinds]int64

	// Contention is the simulated time threads spent blocked waiting to
	// acquire a weak-lock, by kind.
	Contention [NumKinds]int64

	// Timeouts counts weak-lock timeouts that forced the owner to
	// release (paper §2.3; zero for all paper benchmarks).
	Timeouts int64
}

// Ops returns the total dynamic weak-lock operations (acquires+releases)
// of kind k.
func (s *Stats) Ops(k Kind) int64 { return s.Acquires[k] + s.Releases[k] }

// TotalOps returns the total dynamic weak-lock operations over all kinds.
func (s *Stats) TotalOps() int64 {
	var n int64
	for k := Kind(0); k < NumKinds; k++ {
		n += s.Ops(k)
	}
	return n
}

// Add accumulates other into s.
func (s *Stats) Add(other *Stats) {
	for k := 0; k < int(NumKinds); k++ {
		s.Acquires[k] += other.Acquires[k]
		s.Releases[k] += other.Releases[k]
		s.Logs[k] += other.Logs[k]
		s.LogCycles[k] += other.LogCycles[k]
		s.Contention[k] += other.Contention[k]
	}
	s.Timeouts += other.Timeouts
}

// SiteStats accumulates the dynamic counts of one weak-lock (one table
// slot) during a run; the VM keeps one per lock, indexed by ID
// (vm.Result.WLSites). Where Stats aggregates by granularity for the
// paper's tables, SiteStats attributes the same operations to individual
// locks for the observability layer's per-site metrics.
//
// Acquires and Releases count only the committed, non-reentrant
// operations — exactly the ones the recorder writes to the order log —
// so over a recorded run, Acquires+Releases+Forced per site sums to that
// lock's order-log record count. Reentrant re-acquisitions (and their
// matching inner releases) bypass gating and logging and are counted
// separately.
type SiteStats struct {
	Acquires          int64 // committed non-reentrant acquires (one order-log record each)
	ReentrantAcquires int64 // nested re-acquisitions by the holder (not logged)
	Releases          int64 // committed outermost releases (one order-log record each)
	ReentrantReleases int64 // nested releases that just drop a depth level (not logged)
	Forced            int64 // forced releases: organic timeouts and replay-injected preemptions
	Contended         int64 // committed acquires that blocked before succeeding
	StallCycles       int64 // simulated cycles those acquires spent blocked
}

// RangesOverlap reports whether [lo1,hi1] and [lo2,hi2] intersect. An
// empty range (lo > hi, e.g. from a zero-trip loop's bounds) overlaps
// nothing; the infinite sentinels overlap every nonempty range.
func RangesOverlap(lo1, hi1, lo2, hi2 int64) bool {
	if lo1 > hi1 || lo2 > hi2 {
		return false
	}
	return lo1 <= hi2 && lo2 <= hi1
}
