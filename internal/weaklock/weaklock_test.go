package weaklock

import (
	"testing"
	"testing/quick"
)

func TestTableAddLookup(t *testing.T) {
	tb := NewTable()
	f := tb.Add(KindFunc, "clique0", false)
	l := tb.Add(KindLoop, "sites@1", true)
	if f != 0 || l != 1 {
		t.Fatalf("ids: %d %d", f, l)
	}
	if tb.Len() != 2 {
		t.Fatalf("len %d", tb.Len())
	}
	d := tb.Lock(l)
	if d == nil || d.Kind != KindLoop || !d.Ranged || d.Name != "sites@1" {
		t.Fatalf("descriptor %+v", d)
	}
	if tb.Lock(99) != nil || tb.Lock(-1) != nil {
		t.Fatalf("out-of-range lookups must be nil")
	}
	counts := tb.CountByKind()
	if counts[KindFunc] != 1 || counts[KindLoop] != 1 {
		t.Fatalf("counts %v", counts)
	}
}

func TestKindOrderAndNames(t *testing.T) {
	// The numeric order IS the acquisition order: func < loop < bb < instr.
	if !(KindFunc < KindLoop && KindLoop < KindBB && KindBB < KindInstr) {
		t.Fatal("kind ordering broken")
	}
	names := map[Kind]string{KindFunc: "func", KindLoop: "loop", KindBB: "bb", KindInstr: "instr"}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%d name %q, want %q", k, k.String(), want)
		}
	}
}

func TestStatsAccumulate(t *testing.T) {
	var a, b Stats
	a.Acquires[KindLoop] = 3
	a.Releases[KindLoop] = 3
	a.Logs[KindLoop] = 6
	a.Contention[KindLoop] = 100
	b.Acquires[KindLoop] = 2
	b.Releases[KindLoop] = 1
	b.Timeouts = 1
	a.Add(&b)
	if a.Ops(KindLoop) != 9 {
		t.Errorf("ops %d, want 9", a.Ops(KindLoop))
	}
	if a.TotalOps() != 9 {
		t.Errorf("total %d", a.TotalOps())
	}
	if a.Timeouts != 1 {
		t.Errorf("timeouts %d", a.Timeouts)
	}
}

func TestRangesOverlapBasics(t *testing.T) {
	cases := []struct {
		lo1, hi1, lo2, hi2 int64
		want               bool
	}{
		{0, 10, 5, 15, true},
		{0, 10, 10, 20, true}, // touching endpoints overlap
		{0, 10, 11, 20, false},
		{NegInf, PosInf, 5, 5, true},
		{NegInf, PosInf, NegInf, PosInf, true},
		{5, 4, 0, 100, false}, // empty range overlaps nothing
		{7, 7, 7, 7, true},
	}
	for _, c := range cases {
		if got := RangesOverlap(c.lo1, c.hi1, c.lo2, c.hi2); got != c.want {
			t.Errorf("RangesOverlap(%d,%d,%d,%d) = %v, want %v",
				c.lo1, c.hi1, c.lo2, c.hi2, got, c.want)
		}
	}
}

// Property: overlap is symmetric, and any nonempty range overlaps itself
// and the infinite range.
func TestRangesOverlapProperties(t *testing.T) {
	sym := func(a, b, c, d int16) bool {
		l1, h1, l2, h2 := int64(a), int64(b), int64(c), int64(d)
		return RangesOverlap(l1, h1, l2, h2) == RangesOverlap(l2, h2, l1, h1)
	}
	if err := quick.Check(sym, nil); err != nil {
		t.Error(err)
	}
	self := func(a, w uint8) bool {
		lo := int64(a)
		hi := lo + int64(w)
		return RangesOverlap(lo, hi, lo, hi) &&
			RangesOverlap(lo, hi, NegInf, PosInf)
	}
	if err := quick.Check(self, nil); err != nil {
		t.Error(err)
	}
}
